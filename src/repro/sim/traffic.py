"""Open-loop client-traffic engine: seeded arrivals, admission, skew.

Every workload before this module was *closed-loop*: each rank generates
its next message only after the previous one completed, so the offered
load adapts to however slow the cluster happens to be.  The service the
ROADMAP asks the replicated cluster to front is the opposite — an
*open-loop* population of clients submits requests at a rate the cluster
does not control, and the interesting questions are exactly the ones a
closed loop cannot ask: how many requests were **admitted**, how many
were **rejected** at a bounded queue, and how many admitted requests the
cluster **lost** when replicas failed mid-epoch.

The engine follows the geods-analyze client-node shape (SNIPPETS.md
Snippet 1): each logical rank doubles as a clock-skewed client that
accumulates arrivals in a bounded per-epoch admission queue and submits
the batch at its local epoch boundary.  Determinism is structural, not
incidental:

* arrivals are drawn at **bind time** from dedicated
  :class:`~repro.sim.rng.RngRegistry` streams (``traffic.skew`` plus one
  ``traffic.arrivals.<rank>`` stream per client), so the whole offered
  timeline is a pure function of ``(seed, TrafficConfig, n_ranks)`` and
  never consumes draws from the engine's jitter/fault streams;
* admission is computed **arithmetically** from the sampled arrival
  times (first ``queue_capacity`` arrivals per epoch window admitted,
  the rest rejected) — not from simulated queue timing — so the batch a
  replica submits is identical across replicas and across serial vs
  pooled sweep execution (send-determinism, Definition 1, survives);
* clock skew shifts where a client's sampling window sits on the global
  rate profile (a skewed client sees a shifted burst phase), which is
  observable in the arrival counts yet still seed-deterministic.

What stays *simulated* is the commit path: each epoch batch rides one
sum-allreduce through the replicated protocol under test, with a recovery
point per epoch, and the :class:`TrafficBook` marks an epoch completed
only when some replica of the rank finishes it.  Crash a rank's every
replica and its admitted-but-uncommitted requests surface as
``requests_lost`` — the open-loop loss accounting the closed-form balance
``offered == admitted + rejected`` and ``admitted == completed + lost``
audits on every run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from repro.sim.rng import RngRegistry

__all__ = [
    "ARRIVAL_PROCESSES",
    "TrafficError",
    "TrafficConfig",
    "ClientPlan",
    "TrafficBook",
    "TrafficState",
    "build_plans",
    "open_loop_app",
    "expected_traffic_results",
    "scaled_config",
]

#: supported arrival-process shapes (the ``process`` knob)
ARRIVAL_PROCESSES: Tuple[str, ...] = ("poisson", "bursty", "diurnal")


class TrafficError(ValueError):
    """Invalid traffic configuration — raised at build time."""


@dataclass(frozen=True)
class TrafficConfig:
    """Knobs of one open-loop client population.

    ``rate`` is the *mean* arrival rate per client in requests per
    virtual second; the non-Poisson processes modulate an instantaneous
    rate around it (bursty on/off square wave, diurnal sinusoid) while
    preserving that mean.  ``epoch``/``epochs`` define the batching
    grid; a scenario binding ties them to the campaign's ``steps`` and
    ``active`` window so faults land under live traffic.
    """

    process: str = "poisson"
    #: mean arrivals per client per virtual second
    rate: float = 3.2e6
    #: epoch (batch) length in virtual seconds
    epoch: float = 5e-6
    #: number of epochs each client submits
    epochs: int = 12
    #: bounded admission queue: max requests admitted per epoch window
    queue_capacity: int = 12
    #: stddev of the per-client clock skew (seconds)
    skew_sigma: float = 5e-7
    #: bursty: on-phase fraction of each burst period
    burst_duty: float = 0.5
    #: bursty: burst period, in epochs
    burst_period_epochs: float = 4.0
    #: bursty: on-rate / off-rate ratio (mean rate is preserved)
    burst_ratio: float = 8.0
    #: diurnal: relative amplitude of the sinusoidal profile (0..1)
    diurnal_amplitude: float = 0.9
    #: diurnal: profile period, in epochs
    diurnal_period_epochs: float = 12.0

    def validate(self) -> "TrafficConfig":
        if self.process not in ARRIVAL_PROCESSES:
            raise TrafficError(
                f"unknown arrival process {self.process!r}; have {ARRIVAL_PROCESSES}"
            )
        if not self.rate > 0:
            raise TrafficError(f"rate must be > 0, got {self.rate}")
        if not self.epoch > 0:
            raise TrafficError(f"epoch must be > 0, got {self.epoch}")
        if self.epochs < 1:
            raise TrafficError(f"epochs must be >= 1, got {self.epochs}")
        if self.queue_capacity < 1:
            raise TrafficError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.skew_sigma < 0:
            raise TrafficError(f"skew_sigma must be >= 0, got {self.skew_sigma}")
        if not 0 < self.burst_duty < 1:
            raise TrafficError(f"burst_duty must be in (0, 1), got {self.burst_duty}")
        if self.burst_ratio < 1 or self.burst_period_epochs <= 0:
            raise TrafficError("bursty profile needs burst_ratio >= 1 and a positive period")
        if not 0 <= self.diurnal_amplitude < 1 or self.diurnal_period_epochs <= 0:
            raise TrafficError(
                "diurnal profile needs 0 <= amplitude < 1 and a positive period"
            )
        return self

    # ------------------------------------------------------- rate profile
    def peak_rate(self) -> float:
        """Upper bound of the instantaneous rate (thinning envelope)."""
        if self.process == "bursty":
            return self._burst_rates()[0]
        if self.process == "diurnal":
            return self.rate * (1.0 + self.diurnal_amplitude)
        return self.rate

    def _burst_rates(self) -> Tuple[float, float]:
        """(on, off) rates preserving the configured mean."""
        duty, ratio = self.burst_duty, self.burst_ratio
        off = self.rate / (duty * ratio + (1.0 - duty))
        return ratio * off, off

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at global time *t*."""
        if self.process == "bursty":
            on, off = self._burst_rates()
            period = self.burst_period_epochs * self.epoch
            return on if (t % period) < self.burst_duty * period else off
        if self.process == "diurnal":
            period = self.diurnal_period_epochs * self.epoch
            return self.rate * (
                1.0 + self.diurnal_amplitude * math.sin(2.0 * math.pi * t / period)
            )
        return self.rate


@dataclass(frozen=True)
class ClientPlan:
    """One client's precomputed, seed-deterministic traffic timeline."""

    rank: int
    #: this client's clock offset from global time (seconds)
    skew: float
    #: arrivals per epoch window, on the client's local clock
    offered: Tuple[int, ...]
    #: admitted per epoch: ``min(offered, queue_capacity)``
    admitted: Tuple[int, ...]
    #: rejected per epoch: admission-queue overflow
    rejected: Tuple[int, ...]


def build_plans(cfg: TrafficConfig, n_ranks: int, seed: int) -> List[ClientPlan]:
    """Sample every client's arrival/admission plan from *seed*.

    Thinning (Lewis) against the profile's peak rate: candidate arrivals
    come from a homogeneous Poisson process at ``peak_rate`` on the
    client's local clock, each kept with probability
    ``rate_at(local + skew) / peak``.  The Poisson process accepts every
    candidate but consumes the same draw, so the three profiles share one
    draw discipline.  Per-client RNG streams keep one client's plan
    independent of every other's.
    """
    cfg.validate()
    if n_ranks < 1:
        raise TrafficError(f"n_ranks must be >= 1, got {n_ranks}")
    registry = RngRegistry(seed)
    skew_rng = registry.stream("traffic.skew")
    window = cfg.epochs * cfg.epoch
    peak = cfg.peak_rate()
    plans: List[ClientPlan] = []
    for rank in range(n_ranks):
        skew = float(skew_rng.normal(0.0, cfg.skew_sigma)) if cfg.skew_sigma else 0.0
        rng = registry.stream(f"traffic.arrivals.{rank}")
        offered = [0] * cfg.epochs
        t = float(rng.exponential(1.0 / peak))
        while t < window:
            if float(rng.random()) * peak < cfg.rate_at(t + skew):
                offered[min(int(t / cfg.epoch), cfg.epochs - 1)] += 1
            t += float(rng.exponential(1.0 / peak))
        admitted = [min(o, cfg.queue_capacity) for o in offered]
        rejected = [o - a for o, a in zip(offered, admitted)]
        plans.append(
            ClientPlan(
                rank=rank,
                skew=skew,
                offered=tuple(offered),
                admitted=tuple(admitted),
                rejected=tuple(rejected),
            )
        )
    return plans


class TrafficBook:
    """Request ledger one job's clients share: offered/admitted/rejected
    are fixed by the plans at bind time; ``completed`` advances as some
    replica of each rank commits an epoch (monotone max, so replicas and
    recovery forks record idempotently); ``lost`` is the admitted
    remainder the cluster never committed."""

    def __init__(self, plans: List[ClientPlan]) -> None:
        self.plans = list(plans)
        self._committed: Dict[int, int] = {p.rank: 0 for p in self.plans}

    def commit(self, rank: int, epochs_done: int) -> None:
        if self._committed[rank] < epochs_done:
            self._committed[rank] = epochs_done

    def committed_epochs(self, rank: int) -> int:
        return self._committed[rank]

    def totals(self) -> Dict[str, int]:
        offered = sum(sum(p.offered) for p in self.plans)
        admitted = sum(sum(p.admitted) for p in self.plans)
        rejected = sum(sum(p.rejected) for p in self.plans)
        completed = sum(
            sum(p.admitted[: self._committed[p.rank]]) for p in self.plans
        )
        return {
            "requests_offered": offered,
            "requests_admitted": admitted,
            "requests_rejected": rejected,
            "requests_completed": completed,
            "requests_lost": admitted - completed,
        }

    def audit(self) -> None:
        """Zero-loss-of-accounting balance (mirrors the arena audit)."""
        t = self.totals()
        assert t["requests_offered"] == t["requests_admitted"] + t["requests_rejected"], (
            f"traffic book imbalance: offered {t['requests_offered']} != "
            f"admitted {t['requests_admitted']} + rejected {t['requests_rejected']}"
        )
        assert t["requests_completed"] + t["requests_lost"] == t["requests_admitted"], (
            f"traffic book imbalance: completed {t['requests_completed']} + "
            f"lost {t['requests_lost']} != admitted {t['requests_admitted']}"
        )
        assert t["requests_lost"] >= 0, (
            f"traffic book overcommit: lost {t['requests_lost']} < 0"
        )


class TrafficState:
    """Snapshot/restore-able client state (recovery support, §3.4)."""

    def __init__(self) -> None:
        self.step = 0
        self.acc = 0.0


def open_loop_app(mpi, book: TrafficBook, service: float = 2.5e-7, state=None):
    """Per-rank client: submit each epoch's admitted batch via one
    sum-allreduce (the commit round every replica must agree on), mark
    the epoch committed in the shared book, and model the service time
    proportionally to the batch size.  The per-epoch recovery point lets
    a respawned replica fork mid-timeline without re-committing."""
    st = state or TrafficState()
    mpi.register_state(st)
    plan = book.plans[mpi.rank]
    epochs = len(plan.admitted)
    while st.step < epochs:
        batch = plan.admitted[st.step]
        total = yield from mpi.allreduce(float(batch), op="sum")
        st.acc += float(total)
        st.step += 1
        book.commit(mpi.rank, st.step)
        yield from mpi.recovery_point()
        yield from mpi.compute(service * batch + 1e-7)
    return st.acc


def expected_traffic_results(plans: List[ClientPlan]) -> Dict[int, float]:
    """Closed-form per-rank return value of :func:`open_loop_app` on a
    fault-free run: every epoch's global admitted total, accumulated.
    Batch counts are small integers, so the float sums are exact in any
    reduction order."""
    epochs = len(plans[0].admitted) if plans else 0
    acc = 0.0
    for e in range(epochs):
        acc += float(sum(p.admitted[e] for p in plans))
    return {p.rank: acc for p in plans}


def scaled_config(base: TrafficConfig, steps: int, active: float) -> TrafficConfig:
    """Fit *base* onto a campaign's batching grid: ``steps`` epochs
    spanning the campaign's fault-active window, so the seeded fault mixes
    land while clients are live."""
    if steps < 1 or not active > 0:
        raise TrafficError(f"need steps >= 1 and active > 0, got {steps}/{active}")
    return replace(base, epochs=steps, epoch=active / steps)
