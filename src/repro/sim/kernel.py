"""The event loop: virtual clock plus a deterministic two-level queue.

Determinism contract
--------------------
Events scheduled for the same virtual time fire in the order they were
scheduled (FIFO tie-breaking via a sequence counter).  Nothing in the kernel
consults wall-clock time or unseeded randomness, so a simulation is a pure
function of its inputs.  This property is load-bearing: the send-determinism
checker (:mod:`repro.trace.determinism`) relies on being able to perturb
*only* the knobs it intends to perturb.

Two-level queue
---------------
The queue has two levels keyed on the current virtual time:

* the **near-horizon bucket** — a plain FIFO (`deque`) holding events
  scheduled *at* the current timestamp.  Now-time insertions are the
  majority of queue traffic in MPI simulations (zero-delay completions,
  endpoint wake-ups, same-time follow-ups of a frame arrival), and a FIFO
  append/popleft replaces an O(log n) heap push/pop pair whose depth grows
  with rank count;
* the **heap** — `heapq` of ``(time, seq, event)`` for strictly-future
  timestamps only.

FIFO ``(time, seq)`` order is provably unchanged: every entry the heap
holds for time *T* was pushed while ``now < T`` and therefore carries a
lower sequence number than anything appended to the bucket once the clock
reads *T* — so draining heap-at-now entries first, then the bucket (which
preserves insertion order by construction), reproduces exactly the order
the heap-only queue would have produced.  ``Simulator(bucketed=False)``
keeps every insertion on the heap — the executable specification the
equivalence suite (``tests/test_queue_equivalence.py``) compares against.

Every now-time insertion site routes through this decision: the kernel's
:meth:`Simulator.schedule`/:meth:`Simulator.schedule_at`, and the inlined
hot paths in :mod:`repro.sim.sync` (zero-delay ``Event.succeed``,
``Timeout``), :mod:`repro.sim.process` (zero CPU charges) and
:mod:`repro.network.fabric` (endpoint wake-ups, zero-latency arrivals).
Bucket entries carry no sequence number — the FIFO *is* the order — so
the dominant insertion also skips the counter increment and tuple build.

Hot-path notes
--------------
:meth:`Simulator.run` dispatches a specialized no-trace loop when no
``trace_hook`` is installed (the overwhelmingly common case): no per-event
hook branch, no ``getattr`` fallback for ``cancelled``, locals hoisted out
of the loop, and events sharing a virtual timestamp dispatched as one
batch (see :meth:`Simulator._run_fast`).  Every schedulable object
therefore **must** carry a
``cancelled`` attribute (see :class:`EventLike`); a class-level
``cancelled = False`` is enough for events that are never revoked.
Install ``trace_hook`` before calling :meth:`run` — mid-run installation
is not observed until the next ``run`` call.
"""

from __future__ import annotations

import gc
import heapq
from collections import deque
from typing import Any, Callable, Optional

__all__ = ["Simulator", "SimulationError", "StopSimulation"]


class SimulationError(RuntimeError):
    """Raised for fatal kernel-level errors (deadlock, time travel, ...)."""


class StopSimulation(Exception):
    """Raised internally to abort :meth:`Simulator.run` early."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    trace_hook:
        Optional callable invoked as ``trace_hook(time, event)`` just before
        each event fires; used by :mod:`repro.trace` for observability.
        Running without a hook takes a faster specialized dispatch loop.
    bucketed:
        ``True`` (default) enables the near-horizon bucket for now-time
        insertions; ``False`` keeps every insertion on the heap — the
        seed-shaped reference mode the equivalence suite runs against.
    """

    __slots__ = (
        "_now",
        "_seq",
        "_queue",
        "_bucket",
        "_bucketed",
        "_running",
        "_stopped",
        "trace_hook",
        "on_advance",
        "events_dispatched",
    )

    def __init__(
        self,
        trace_hook: Optional[Callable[[float, Any], None]] = None,
        bucketed: bool = True,
    ) -> None:
        self._now: float = 0.0
        self._seq: int = 0
        self._queue: list = []  # heap of (time, seq, event) — future times
        self._bucket: deque = deque()  # FIFO of events at the current time
        self._bucketed = bucketed
        self._running = False
        self._stopped: Optional[StopSimulation] = None
        self.trace_hook = trace_hook
        #: quiescent-point hook: a zero-argument callable invoked after all
        #: events at the current timestamp have fired, just before the
        #: clock advances.  Deliberately *not* a scheduled event — it never
        #: touches ``events_dispatched`` or the queue order, so enabling it
        #: is unobservable to determinism goldens.  The callee must not
        #: schedule events or raise; the harness uses it to trim arena
        #: free lists between timestamp batches (Job ``arena_trim``).
        self.on_advance: Optional[Callable[[], None]] = None
        #: number of events dispatched so far (observability/bench metric)
        self.events_dispatched: int = 0

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # ------------------------------------------------------------- scheduling
    def schedule(self, event: "EventLike", delay: float = 0.0) -> "EventLike":
        """Enqueue *event* to fire ``delay`` seconds from now.

        Returns the event to allow chaining.  Negative delays are a
        programming error and raise :class:`SimulationError`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event {delay} s in the past")
        if delay or not self._bucketed:
            self._seq += 1
            heapq.heappush(self._queue, (self._now + delay, self._seq, event))
        else:
            self._bucket.append(event)
        return event

    def schedule_at(self, event: "EventLike", when: float) -> "EventLike":
        """Enqueue *event* to fire at absolute virtual time *when*."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at t={when} (now t={self._now})"
            )
        if when > self._now or not self._bucketed:
            self._seq += 1
            heapq.heappush(self._queue, (when, self._seq, event))
        else:
            self._bucket.append(event)
        return event

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Schedule a bare callback at absolute time *when*."""
        self.schedule_at(_Callback(fn), when)

    def call_in(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule a bare callback ``delay`` seconds from now."""
        self.schedule(_Callback(fn), delay)

    # ------------------------------------------------------------------- run
    def run(self, until: Optional[float] = None) -> Any:
        """Dispatch events until the queue drains or *until* is reached.

        Returns the value carried by :class:`StopSimulation` if the
        simulation was stopped explicitly, else ``None``.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        self._stopped = None
        # The dispatch loop allocates heavily (events, frames, generator
        # frames) but creates almost no garbage cycles; pausing the cyclic
        # collector for the duration avoids whole-heap scans mid-run.  It
        # is restored whatever happens, and has no observable effect on
        # simulation results.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if self.trace_hook is not None:
                self._run_traced(until)
            else:
                self._run_fast(until)
        finally:
            if gc_was_enabled:
                gc.enable()
            self._running = False
        return self._stopped.value if self._stopped is not None else None

    def _run_fast(self, until: Optional[float]) -> None:
        """Specialized dispatch loop: no trace hook, no defensive getattr.

        Events sharing the current virtual time are dispatched as one
        *batch*: heap entries at the current time first (they were pushed
        before the clock reached it and carry lower sequence numbers),
        then the near-horizon bucket in FIFO order — anything a batch
        member schedules *at* the current time lands at the bucket's tail,
        which is exactly where the heap-only queue's higher sequence
        number would have placed it.  One clock store and deadline check
        per timestamp, not per event.  ``events_dispatched`` is
        accumulated in a local and written back on exit (including the
        StopSimulation path), never observable mid-run by events
        themselves — nothing in-tree reads it before :meth:`run` returns.
        """
        queue = self._queue
        bucket = self._bucket
        heappop = heapq.heappop
        popleft = bucket.popleft
        dispatched = self.events_dispatched
        try:
            if until is None:
                # Unbounded drain (the overwhelmingly common call): no
                # deadline comparison per timestamp.  Each phase is its
                # own tight loop: heap entries at the current time pay one
                # top-of-heap compare per event (exactly the old batching
                # loop), bucket entries pay one truthiness check — firing
                # a bucket event can append to the bucket but never push
                # a same-time heap entry (now-time insertions are routed),
                # which is what makes the phase split safe.
                while True:
                    now = self._now
                    while queue and queue[0][0] == now:
                        event = heappop(queue)[2]
                        if not event.cancelled:
                            dispatched += 1
                            event.fire()
                    while bucket:
                        event = popleft()
                        if not event.cancelled:
                            dispatched += 1
                            event.fire()
                    if queue:
                        when = queue[0][0]
                        if when == now:
                            # Unrouted same-time push (direct heappush by
                            # embedding code): defensive re-drain.
                            continue
                        advance = self.on_advance
                        if advance is not None:
                            advance()
                        self._now = when
                    else:
                        return
            while True:
                now = self._now
                if now <= until:
                    while queue and queue[0][0] == now:
                        event = heappop(queue)[2]
                        if not event.cancelled:
                            dispatched += 1
                            event.fire()
                    while bucket:
                        event = popleft()
                        if not event.cancelled:
                            dispatched += 1
                            event.fire()
                if not queue or queue[0][0] > until:
                    self._now = until
                    return
                if queue[0][0] != now:
                    advance = self.on_advance
                    if advance is not None:
                        advance()
                    self._now = queue[0][0]
        except StopSimulation as stop:
            self._stopped = stop
        finally:
            self.events_dispatched = dispatched

    def _run_traced(self, until: Optional[float]) -> None:
        """Observability loop: invokes ``trace_hook`` before every event.

        Same two-level drain order as :meth:`_run_fast`, one event at a
        time so the hook observes each ``(time, event)`` pair.
        """
        queue = self._queue
        bucket = self._bucket
        while True:
            now = self._now
            if until is None or now <= until:
                while True:
                    if queue and queue[0][0] == now:
                        event = heapq.heappop(queue)[2]
                    elif bucket:
                        event = bucket.popleft()
                    else:
                        break
                    if getattr(event, "cancelled", False):
                        continue
                    self.trace_hook(self._now, event)
                    self.events_dispatched += 1
                    try:
                        event.fire()
                    except StopSimulation as stop:
                        self._stopped = stop
                        return
            if not queue:
                break
            when = queue[0][0]
            if until is not None and when > until:
                self._now = until
                return
            advance = self.on_advance
            if advance is not None:
                advance()
            self._now = when
        if until is not None:
            self._now = until

    def run_until_before(self, horizon: float) -> Any:
        """Dispatch every event with virtual time strictly below *horizon*.

        The conservative-window drain used by sharded-parallel execution
        (:mod:`repro.sim.shard`): unlike :meth:`run`, which is *inclusive*
        of events at ``until``, this leaves every event at
        ``t >= horizon`` pending and the clock strictly below *horizon*
        (or unchanged if nothing fired).  A shard can therefore run its
        window ``[W, W + lookahead)``, exchange cross-shard frames whose
        arrivals all land at ``>= W + lookahead``, and resume — without
        ever firing an event whose inputs a peer shard could still
        change.  Kept as its own loop so the :meth:`_run_fast` hot path
        stays branch-free.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        self._stopped = None
        queue = self._queue
        bucket = self._bucket
        heappop = heapq.heappop
        popleft = bucket.popleft
        dispatched = self.events_dispatched
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while True:
                now = self._now
                if now >= horizon:
                    break
                while queue and queue[0][0] == now:
                    event = heappop(queue)[2]
                    if not event.cancelled:
                        dispatched += 1
                        event.fire()
                while bucket:
                    event = popleft()
                    if not event.cancelled:
                        dispatched += 1
                        event.fire()
                if not queue:
                    break
                when = queue[0][0]
                if when == now:
                    continue
                if when >= horizon:
                    break
                advance = self.on_advance
                if advance is not None:
                    advance()
                self._now = when
        except StopSimulation as stop:
            self._stopped = stop
        finally:
            self.events_dispatched = dispatched
            if gc_was_enabled:
                gc.enable()
            self._running = False
        return self._stopped.value if self._stopped is not None else None

    def step(self) -> bool:
        """Dispatch a single event.  Returns False when the queue is empty."""
        queue = self._queue
        bucket = self._bucket
        if bucket:
            # Heap entries at the current time (pushed before the clock
            # reached it, hence lower seq) fire before bucket entries.
            if queue and queue[0][0] <= self._now:
                when, _seq, event = heapq.heappop(queue)
                self._now = when
            else:
                event = bucket.popleft()
        elif queue:
            when, _seq, event = heapq.heappop(queue)
            self._now = when
        else:
            return False
        if event.cancelled:
            return True
        self.events_dispatched += 1
        event.fire()
        return True

    def stop(self, value: Any = None) -> None:
        """Stop the simulation from inside an event callback."""
        raise StopSimulation(value)

    @property
    def queue_size(self) -> int:
        return len(self._queue) + len(self._bucket)

    def peek(self) -> Optional[float]:
        """Virtual time of the next pending event, or None if idle."""
        if self._bucket:
            return self._now
        return self._queue[0][0] if self._queue else None


class _Callback:
    """Adapter turning a plain callable into a schedulable event."""

    __slots__ = ("fn", "cancelled")

    def __init__(self, fn: Callable[[], None]) -> None:
        self.fn = fn
        self.cancelled = False

    def fire(self) -> None:
        self.fn()


class EventLike:
    """Protocol for objects accepted by :meth:`Simulator.schedule`.

    Anything with a ``fire()`` method and a ``cancelled`` attribute
    qualifies; :class:`repro.sim.sync.Event` is the canonical
    implementation.  ``cancelled`` is **required** (a class attribute
    ``cancelled = False`` suffices): the no-trace dispatch loop reads it
    directly instead of paying a per-event ``getattr`` fallback.
    """

    cancelled: bool = False

    def fire(self) -> None:  # pragma: no cover - protocol stub
        raise NotImplementedError
