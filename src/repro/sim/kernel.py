"""The event loop: virtual clock plus a deterministic priority queue.

Determinism contract
--------------------
Events scheduled for the same virtual time fire in the order they were
scheduled (FIFO tie-breaking via a sequence counter).  Nothing in the kernel
consults wall-clock time or unseeded randomness, so a simulation is a pure
function of its inputs.  This property is load-bearing: the send-determinism
checker (:mod:`repro.trace.determinism`) relies on being able to perturb
*only* the knobs it intends to perturb.

Hot-path notes
--------------
:meth:`Simulator.run` dispatches a specialized no-trace loop when no
``trace_hook`` is installed (the overwhelmingly common case): no per-event
hook branch, no ``getattr`` fallback for ``cancelled``, locals hoisted out
of the loop, and events sharing a virtual timestamp dispatched as one
batch (see :meth:`Simulator._run_fast`).  Every schedulable object
therefore **must** carry a
``cancelled`` attribute (see :class:`EventLike`); a class-level
``cancelled = False`` is enough for events that are never revoked.
Install ``trace_hook`` before calling :meth:`run` — mid-run installation
is not observed until the next ``run`` call.
"""

from __future__ import annotations

import gc
import heapq
from typing import Any, Callable, Optional

__all__ = ["Simulator", "SimulationError", "StopSimulation"]


class SimulationError(RuntimeError):
    """Raised for fatal kernel-level errors (deadlock, time travel, ...)."""


class StopSimulation(Exception):
    """Raised internally to abort :meth:`Simulator.run` early."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    trace_hook:
        Optional callable invoked as ``trace_hook(time, event)`` just before
        each event fires; used by :mod:`repro.trace` for observability.
        Running without a hook takes a faster specialized dispatch loop.
    """

    __slots__ = (
        "_now",
        "_seq",
        "_queue",
        "_running",
        "_stopped",
        "trace_hook",
        "events_dispatched",
    )

    def __init__(self, trace_hook: Optional[Callable[[float, Any], None]] = None) -> None:
        self._now: float = 0.0
        self._seq: int = 0
        self._queue: list = []  # heap of (time, seq, event)
        self._running = False
        self._stopped: Optional[StopSimulation] = None
        self.trace_hook = trace_hook
        #: number of events dispatched so far (observability/bench metric)
        self.events_dispatched: int = 0

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # ------------------------------------------------------------- scheduling
    def schedule(self, event: "EventLike", delay: float = 0.0) -> "EventLike":
        """Enqueue *event* to fire ``delay`` seconds from now.

        Returns the event to allow chaining.  Negative delays are a
        programming error and raise :class:`SimulationError`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event {delay} s in the past")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))
        return event

    def schedule_at(self, event: "EventLike", when: float) -> "EventLike":
        """Enqueue *event* to fire at absolute virtual time *when*."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at t={when} (now t={self._now})"
            )
        self._seq += 1
        heapq.heappush(self._queue, (when, self._seq, event))
        return event

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Schedule a bare callback at absolute time *when*."""
        self.schedule_at(_Callback(fn), when)

    def call_in(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule a bare callback ``delay`` seconds from now."""
        self.schedule(_Callback(fn), delay)

    # ------------------------------------------------------------------- run
    def run(self, until: Optional[float] = None) -> Any:
        """Dispatch events until the queue drains or *until* is reached.

        Returns the value carried by :class:`StopSimulation` if the
        simulation was stopped explicitly, else ``None``.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        self._stopped = None
        # The dispatch loop allocates heavily (events, frames, generator
        # frames) but creates almost no garbage cycles; pausing the cyclic
        # collector for the duration avoids whole-heap scans mid-run.  It
        # is restored whatever happens, and has no observable effect on
        # simulation results.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if self.trace_hook is not None:
                self._run_traced(until)
            else:
                self._run_fast(until)
        finally:
            if gc_was_enabled:
                gc.enable()
            self._running = False
        return self._stopped.value if self._stopped is not None else None

    def _run_fast(self, until: Optional[float]) -> None:
        """Specialized dispatch loop: no trace hook, no defensive getattr.

        Same-timestamp events are dispatched as one *batch*: the inner loop
        drains every heap entry sharing the current virtual time without
        re-entering the dispatch preamble (clock store, deadline check,
        counter write-back).  Virtual time in MPI simulations is extremely
        clumpy — a frame arrival wakes a process whose CPU charges and
        follow-up injections all land at nearby-but-identical timestamps —
        so the common case dispatches several events per preamble.  FIFO
        order is untouched: entries pop in ``(time, seq)`` order either
        way, and anything an event schedules *at* the current time carries
        a higher sequence number, so the inner drain picks it up in exactly
        the order the unbatched loop would have.  ``events_dispatched`` is
        accumulated in a local and written back on exit (including the
        StopSimulation path), never observable mid-run by events themselves
        — nothing in-tree reads it before :meth:`run` returns.
        """
        queue = self._queue
        heappop = heapq.heappop
        dispatched = self.events_dispatched
        try:
            if until is None:
                # Unbounded drain (the overwhelmingly common call): pop
                # directly, no deadline comparison per event.
                while queue:
                    entry = heappop(queue)
                    when = entry[0]
                    self._now = when
                    event = entry[2]
                    while True:
                        if not event.cancelled:
                            dispatched += 1
                            event.fire()
                        if not queue or queue[0][0] != when:
                            break
                        event = heappop(queue)[2]
                return
            while queue:
                when = queue[0][0]
                if when > until:
                    self._now = until
                    return
                entry = heappop(queue)
                self._now = when
                event = entry[2]
                while True:
                    if not event.cancelled:
                        dispatched += 1
                        event.fire()
                    if not queue or queue[0][0] != when:
                        break
                    event = heappop(queue)[2]
            self._now = until
        except StopSimulation as stop:
            self._stopped = stop
        finally:
            self.events_dispatched = dispatched

    def _run_traced(self, until: Optional[float]) -> None:
        """Observability loop: invokes ``trace_hook`` before every event."""
        queue = self._queue
        while queue:
            when, _seq, event = queue[0]
            if until is not None and when > until:
                self._now = until
                return
            heapq.heappop(queue)
            if when < self._now:  # pragma: no cover - defensive
                raise SimulationError("time went backwards")
            self._now = when
            if getattr(event, "cancelled", False):
                continue
            self.trace_hook(self._now, event)
            self.events_dispatched += 1
            try:
                event.fire()
            except StopSimulation as stop:
                self._stopped = stop
                return
        if until is not None:
            self._now = until

    def step(self) -> bool:
        """Dispatch a single event.  Returns False when the queue is empty."""
        if not self._queue:
            return False
        when, _seq, event = heapq.heappop(self._queue)
        self._now = when
        if event.cancelled:
            return True
        self.events_dispatched += 1
        event.fire()
        return True

    def stop(self, value: Any = None) -> None:
        """Stop the simulation from inside an event callback."""
        raise StopSimulation(value)

    @property
    def queue_size(self) -> int:
        return len(self._queue)

    def peek(self) -> Optional[float]:
        """Virtual time of the next pending event, or None if idle."""
        return self._queue[0][0] if self._queue else None


class _Callback:
    """Adapter turning a plain callable into a schedulable event."""

    __slots__ = ("fn", "cancelled")

    def __init__(self, fn: Callable[[], None]) -> None:
        self.fn = fn
        self.cancelled = False

    def fire(self) -> None:
        self.fn()


class EventLike:
    """Protocol for objects accepted by :meth:`Simulator.schedule`.

    Anything with a ``fire()`` method and a ``cancelled`` attribute
    qualifies; :class:`repro.sim.sync.Event` is the canonical
    implementation.  ``cancelled`` is **required** (a class attribute
    ``cancelled = False`` suffices): the no-trace dispatch loop reads it
    directly instead of paying a per-event ``getattr`` fallback.
    """

    cancelled: bool = False

    def fire(self) -> None:  # pragma: no cover - protocol stub
        raise NotImplementedError
