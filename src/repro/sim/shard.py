"""Conservative sharded-parallel execution (Chandy–Misra–Bryant lookahead).

One :class:`~repro.harness.runner.Job` normally runs on one core.  This
module shards its simulated processes **by node** across a self-managed
fork worker pool and synchronizes the per-shard :class:`Simulator`
instances on conservative lookahead windows, exploiting two facts the
paper's system model fixes:

* topology and the cost model are immutable after setup, so the minimum
  inter-node wire latency ``L`` is a compile-time constant of the
  placement — any frame injected at time ``t`` toward another node
  arrives no earlier than ``t + L``;
* frames are only examined inside MPI calls (§3.3 no-async-progress), so
  deferring a cross-node delivery's *pricing* to a synchronization
  barrier is unobservable as long as the arrival still lands in time.

The window protocol (one parent round-trip per window)::

    barrier k:  T = min over shards of next-event time  (lower-bounded by
                the previous horizon when relayed frames are in flight)
    window k:   every shard dispatches events in [_, T + L) concurrently;
                inter-node injects are uplink-priced locally and *deferred*
                (:attr:`Fabric.shard_router`), never delivered directly
    barrier k+1: deferred frames are routed to the shard owning the
                destination node, merged in **canonical order**
                ``(inject_time, src_proc, per-shard seq)``, downlink-priced
                (:meth:`Fabric.price_deferred` — FIFO clamp intact) and
                scheduled; every arrival provably lands at ``>= T + L``,
                strictly after anything the window already dispatched.

Determinism is the contract, not a best effort: the serial engine stays
the executable spec, and the merged run must reproduce its per-run
fingerprint byte-for-byte.  Every feature whose serial behaviour depends
on *global* event interleaving that a shard cannot reconstruct — jitter
draws, stochastic fault draws (drop/dup), the imperfect detector's rng
stream, respawn recovery — is a **hazard**: :func:`classify_hazards`
detects them statically and the job falls back to the serial path with
the reasons recorded in ``JobResult.parallel["fallback"]``.  Delay-only
and partition fault windows draw no rng and stay shardable.

Crash schedules are replayed in *every* shard (endpoint liveness and
membership bookkeeping must agree globally); the membership oracle's
notification fan-out is filtered per shard (``MembershipService.local_procs``)
so each svc delivery fires exactly once, and the runner counts fired
crash callbacks so the merged ``events_dispatched`` can subtract the
``n_shards - 1`` duplicate dispatches per crash.

Zero-leak accounting crosses the relay: an exported frame leaves its
shard's custody (``frames_exported``), an imported one enters as a fresh
acquire (``frames_imported``); each shard's audit proves the extended
balance and the parent re-derives the global one (exports == imports,
merged ``acquired - imported`` equals the serial acquire count).
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import traceback
from bisect import bisect_left
from dataclasses import dataclass
from heapq import heapify, heappush
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "ParallelConfig",
    "ShardPlan",
    "classify_hazards",
    "fingerprint",
    "run_parallel",
]


#: Observables that describe memory policy or the sharding machinery, not
#: the simulated execution, and are legitimately engine-dependent: each
#: shard owns a private frame pool and trimmer (high-water/pool/allocated/
#: trimmed differ), the relay counters are zero by construction on the
#: serial engine, and the payload interner's hit/miss *split* depends on
#: which shard sees a payload first (the hit+miss total is preserved and
#: fingerprinted as ``payload_lookups``).
_FINGERPRINT_EXCLUDED_FABRIC = frozenset(
    {
        "frame_high_water",
        "frame_pool_size",
        "frames_allocated",
        "frames_trimmed",
        "frames_exported",
        "frames_imported",
        "envs_exported",
        "envs_imported",
    }
)


def fingerprint(result) -> dict:
    """Canonical engine-equivalence fingerprint of a ``JobResult``.

    Every simulation-visible observable — runtime, per-proc finish times
    and app results, protocol stats, dispatched-event count, frame/byte
    totals, arena balances, strand attribution, traffic admission — keyed
    exactly; the serial and sharded engines must produce byte-identical
    fingerprints for the same job (the hypothesis equivalence suite
    enforces it).  Memory-policy and machinery counters are excluded, see
    ``_FINGERPRINT_EXCLUDED_FABRIC``.
    """
    import dataclasses

    out: Dict[str, Any] = {}
    for field in dataclasses.fields(result):
        if field.name in ("parallel", "payload_interned", "payload_misses"):
            continue
        value = getattr(result, field.name)
        if field.name == "fabric":
            value = {
                k: v for k, v in value.items() if k not in _FINGERPRINT_EXCLUDED_FABRIC
            }
        out[field.name] = value
    out["payload_lookups"] = result.payload_interned + result.payload_misses
    return out


@dataclass(frozen=True)
class ParallelConfig:
    """Opt-in multi-core execution for one Job.

    *workers* is the requested worker-process count; the planner never
    creates more shards than there are populated nodes (a node's procs
    share uplink/downlink pricing cells and must stay together).
    """

    workers: int = 2

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")


@dataclass(frozen=True)
class ShardPlan:
    """Immutable node → shard partition plus the derived lookahead.

    Shards are contiguous node ranges balanced by process count, so the
    paper's split-halves placement lands replica sets on distinct shards
    when it can.  ``lookahead`` is the minimum wire latency between any
    two *populated* nodes — the window width that makes deferral safe —
    or ``None`` when the job occupies a single node (no inter-node
    traffic exists to relay, but no safe window exists either: serial).
    """

    n_shards: int
    #: proc id -> shard id (dense list, index by proc)
    shard_of_proc: Tuple[int, ...]
    #: node id -> shard id (only populated nodes appear)
    shard_of_node: Dict[int, int]
    #: per shard, the sorted tuple of proc ids it owns
    local_procs: Tuple[Tuple[int, ...], ...]
    lookahead: Optional[float]

    @classmethod
    def build(cls, placement, workers: int) -> "ShardPlan":
        n_procs = len(placement)
        node_of = [placement.node_of(p) for p in range(n_procs)]
        nodes = sorted(set(node_of))
        n_shards = max(1, min(workers, len(nodes)))
        # Contiguous chunks balanced by proc count: each node is cut into
        # the shard its cumulative proc share falls in (the classic
        # proportional partition — for the common equal-procs-per-node
        # placements this is exactly ``floor(i * n_shards / n_nodes)``).
        # A pathologically skewed placement can leave a shard empty;
        # compressing to dense ids keeps the partition contiguous.
        procs_per_node = {n: 0 for n in nodes}
        for n in node_of:
            procs_per_node[n] += 1
        shard_of_node: Dict[int, int] = {}
        acc = 0
        for node in nodes:
            shard_of_node[node] = acc * n_shards // n_procs
            acc += procs_per_node[node]
        dense: Dict[int, int] = {}
        for node in nodes:
            sid = shard_of_node[node]
            if sid not in dense:
                dense[sid] = len(dense)
            shard_of_node[node] = dense[sid]
        n_shards = len(dense)
        shard_of_proc = tuple(shard_of_node[n] for n in node_of)
        local: List[List[int]] = [[] for _ in range(n_shards)]
        for proc, s in enumerate(shard_of_proc):
            local[s].append(proc)
        lookahead = _min_inter_node_latency(placement.cluster, nodes)
        return cls(
            n_shards=n_shards,
            shard_of_proc=shard_of_proc,
            shard_of_node=shard_of_node,
            local_procs=tuple(tuple(procs) for procs in local),
            lookahead=lookahead,
        )

    def validate(self) -> None:
        """Partition sanity: every proc in exactly one shard, shards
        non-empty, node ranges contiguous and node-aligned."""
        seen = set()
        for sid, procs in enumerate(self.local_procs):
            if not procs:
                raise ValueError(f"shard {sid} owns no processes")
            for p in procs:
                if p in seen:
                    raise ValueError(f"proc {p} appears in two shards")
                seen.add(p)
                if self.shard_of_proc[p] != sid:
                    raise ValueError(f"proc {p}: shard_of_proc disagrees with local_procs")
        if len(seen) != len(self.shard_of_proc):
            raise ValueError("some processes are unassigned")
        last = -1
        for node in sorted(self.shard_of_node):
            sid = self.shard_of_node[node]
            if sid < last:
                raise ValueError("node → shard assignment is not contiguous")
            last = sid


def _min_inter_node_latency(cluster, nodes: List[int]) -> Optional[float]:
    """Minimum wire latency over populated inter-node pairs.

    Exhaustive for small node sets; for large ones the sweep covers
    adjacent pairs only, which is exact for the homogeneous
    :class:`~repro.network.topology.Cluster` (``model_for`` distinguishes
    intra vs inter node only, so every inter-node pair shares one model).
    """
    if len(nodes) < 2:
        return None
    if len(nodes) <= 64:
        pairs = itertools.combinations(nodes, 2)
    else:
        pairs = zip(nodes, nodes[1:])
    lat = min(cluster.model_for(a, b).latency for a, b in pairs)
    return lat if lat > 0.0 else None


def classify_hazards(job, plan: ShardPlan) -> List[str]:
    """Reasons this job cannot run sharded (empty list == shardable).

    Each hazard names a feature whose serial semantics depend on global
    state a shard cannot reproduce deterministically; the caller records
    the list in the result metadata and falls back to the serial engine.
    """
    hazards: List[str] = []
    if plan.n_shards < 2:
        hazards.append("single_shard")
    if plan.lookahead is None:
        hazards.append("no_lookahead")
    if job.fabric._jitter is not None:
        # Jitter draws happen per inject in global event order — per-shard
        # order would reshuffle the stream.
        hazards.append("jitter")
    faults = job.fabric._faults
    if faults is not None and any(
        w.drop_p > 0.0 or w.dup_p > 0.0 for w in faults.windows
    ):
        # Probabilistic draws consume the fault stream in global inject
        # order.  Delay-only windows and partitions draw nothing and are
        # decided from (time, nodes) alone — they stay shardable.
        hazards.append("stochastic_faults")
    if job.membership.detector is not None:
        # The imperfect detector draws notification losses from the
        # membership stream in fan-out order across *all* procs.
        hazards.append("detector")
    if any(
        getattr(proto, "recovery_hook", None) is not None
        for proto in job.protocols.values()
    ):
        # Respawn recovery rebuilds stacks mid-run; the forked shards
        # cannot agree on the substitute's fork point without consensus.
        hazards.append("recovery")
    if "fork" not in mp.get_all_start_methods():
        hazards.append("no_fork")
    return hazards


class _ShardRouter:
    """Per-window collector of deferred inter-node frames.

    :meth:`Fabric.inject` calls :meth:`defer` instead of downlink-pricing
    when :attr:`Fabric.shard_router` is set.  ``seq`` is a shard-local
    monotone counter: within one source process it preserves inject
    order, and the canonical merge key ``(inject_time, src_proc, seq)``
    never compares seqs from different shards (a proc injects in exactly
    one shard).  ``sim_seq`` snapshots the kernel's heap-seq counter at
    the defer — the serial engine heappushes the arrival at this exact
    moment, so the snapshot is the frame's push-order position among
    locally-kept same-timestamp heap entries (imported frames lose it at
    the wire: counters from different shards do not compare).
    """

    __slots__ = ("records", "seq")

    def __init__(self) -> None:
        self.records: List[Tuple[Any, float, float, float, float, int, int]] = []
        self.seq = 0

    def defer(
        self, frame, inject_time: float, t_head: float, ser: float, extra_delay: float, sim_seq: int
    ) -> None:
        self.seq += 1
        self.records.append((frame, inject_time, t_head, ser, extra_delay, self.seq, sim_seq))


def _encode_payload(payload) -> Optional[tuple]:
    """Picklable wire form of a frame payload.

    Envelopes are flattened to their value tuple (``ctx`` is already a
    value-compared tuple, ``data`` an immutable snapshot); anything else
    crosses as-is.  The dst shard mints a *fresh* envelope — single-owner
    arena discipline never crosses a process boundary.
    """
    if payload is None:
        return None
    cls = _envelope_class()
    if isinstance(payload, cls):
        return (
            "env",
            (
                payload.kind,
                payload.ctx,
                payload.src_rank,
                payload.tag,
                payload.world_src,
                payload.world_dst,
                payload.seq,
                payload.nbytes,
                payload.data,
                payload.src_phys,
                payload.dst_phys,
                payload.msg_id,
                payload.ctrl_key,
            ),
        )
    return ("raw", payload)


def _decode_payload(enc: Optional[tuple]):
    if enc is None:
        return None
    tag, body = enc
    if tag == "env":
        return _envelope_class()(*body)
    return body


_ENVELOPE_CLASS: Optional[type] = None


def _envelope_class() -> type:
    global _ENVELOPE_CLASS
    if _ENVELOPE_CLASS is None:
        from repro.mpi.pml import Envelope

        _ENVELOPE_CLASS = Envelope
    return _ENVELOPE_CLASS


class _ShardTaint(Exception):
    """A window whose deferred-frame order the shards cannot reconstruct.

    Raised inside a worker's merge when frames from *different* shards hit
    the same destination node's downlink at the exact same inject time:
    the serial engine would price them in its global same-timestamp
    dispatch order, which no shard-local information can recover.  The
    worker reports it at the barrier and the parent falls back to the
    serial engine — same contract as :class:`_DrainRace`.
    """


def _push_vt(marks: list, seq: int, sim) -> float:
    """Virtual time at which pending heap entry *seq* was pushed.

    *marks* is the worker's ``(seq_counter, vtime)`` checkpoint list,
    appended from ``on_advance`` each time a timestamp closes: every seq
    in ``(marks[k-1][0], marks[k][0]]`` was pushed exactly at
    ``marks[k][1]``.  Seqs beyond the last mark were pushed during the
    still-open current timestamp.
    """
    idx = bisect_left(marks, (seq,))
    if idx == len(marks):
        return sim._now
    return marks[idx][1]


def _merge_deferred(
    job,
    plan: "ShardPlan",
    local: list,
    imported: list,
    marks: Optional[list] = None,
    reseq: Optional[dict] = None,
) -> None:
    """Window barrier: price and schedule every deferred frame.

    *local* entries are ``(frame, inject_time, t_head, ser, extra_delay,
    seq)`` with live frame objects; *imported* are wire records
    ``(inject_time, src, seq, dst, size, kind, t_head, ser, extra_delay,
    payload_enc)``.  Both sort under the canonical key
    ``(inject_time, src_shard, seq)``: for time-distinct injects this is
    the order the serial engine priced the shared downlink in, and for
    same-time injects from one shard the shard-local ``seq`` *is* the
    serial dispatch order projected onto that shard (restricted
    determinism — the whole window protocol rests on it).  Same-time
    injects from *different* shards are ordered by shard id, which is
    only a guess; it matters exactly when they contend for one
    destination node's downlink, and that case raises
    :class:`_ShardTaint` (serial fallback) instead of guessing.

    Heap placement must be serial-true, not merely time-true.  Serial
    dispatch breaks arrival-time ties by heap seq — i.e. by *push order*,
    and a frame is pushed at its inject dispatch.  A deferred frame
    pushed here, at the barrier, would sort after every same-arrival
    local entry pushed during past windows, even ones the serial engine
    pushed *after* the frame's inject (observable: the destination
    process resumes before the frame lands, takes the wait-then-wake
    path, and ``events_dispatched`` drifts).  So each deferred frame is
    compared, via the worker's push-time checkpoints (*marks*), against
    the pending entries sharing its arrival time, and the whole
    same-time cohort is *renumbered* with fresh consecutive integer
    seqs in serial push order.  Renumbering (rather than fractional
    interpolation between neighbouring seqs) survives any insertion
    volume — repeated midpoints exhaust double precision on large
    tiers.  Renumbered non-frame entries lose their mark mapping, so
    their true push time is remembered in *reseq* (new seq -> push
    time), consulted before the marks at later merges.  Entries pushed
    at the exact inject instant by another shard are the one genuinely
    unorderable case (cross-shard same-timestamp interleave) and taint.
    """
    fab = job.fabric
    sim = job.sim
    node_of = fab._node_of
    shard_of_proc = plan.shard_of_proc
    entries: List[Tuple[float, int, int, Any]] = []
    # (inject_time, dst_node) -> src shard; a second distinct shard on the
    # same key is the unorderable downlink tie the docstring describes.
    tie_guard: Dict[Tuple[float, int], int] = {}
    for frame, inject_time, t_head, ser, extra_delay, seq, sim_seq in local:
        src_shard = shard_of_proc[frame.src]
        key = (inject_time, node_of[frame.dst])
        if tie_guard.setdefault(key, src_shard) != src_shard:
            raise _ShardTaint("tied cross-shard downlink contention")
        entries.append((inject_time, src_shard, seq, (frame, t_head, ser, extra_delay, sim_seq)))
    for rec in imported:
        inject_time, src, seq, dst, size, kind, t_head, ser, extra_delay, enc = rec
        src_shard = shard_of_proc[src]
        key = (inject_time, node_of[dst])
        if tie_guard.setdefault(key, src_shard) != src_shard:
            raise _ShardTaint("tied cross-shard downlink contention")
        frame = fab.import_frame(src, dst, size, _decode_payload(enc), kind)
        entries.append((inject_time, src_shard, seq, (frame, t_head, ser, extra_delay, None)))
    if not entries:
        return
    entries.sort(key=lambda e: (e[0], e[1], e[2]))
    queue = sim._queue
    # Pass 1 — canonical-order pricing: downlink occupancy must evolve in
    # serial inject order regardless of where each frame lands in the heap.
    priced: List[Tuple[float, float, Any, Any]] = []
    for inject_time, _sh, _seq, (frame, t_head, ser, extra_delay, sim_seq) in entries:
        arrival = fab.price_deferred(frame.src, frame.dst, t_head, ser, extra_delay)
        # Serial inject stamps sent_at at dispatch; imported frames must
        # carry it too — it is the push-order witness for later merges.
        frame.sent_at = inject_time
        priced.append((arrival, inject_time, sim_seq, frame))
    # Pass 2 — serial-true heap placement.  One queue scan collects the
    # pending entries sharing any of our arrival times (and the minimum
    # pending seq, which bounds how far back push-time checkpoints can
    # still be queried — everything older is pruned).
    arrival_times = {p[0] for p in priced}
    colliders: Dict[float, list] = {}
    min_pending: Optional[float] = None
    for t, seq_e, _ev in queue:
        if min_pending is None or seq_e < min_pending:
            min_pending = seq_e
        if t in arrival_times:
            colliders.setdefault(t, []).append((seq_e, _ev))
    if min_pending is not None:
        if marks is not None:
            del marks[: bisect_left(marks, (min_pending,))]
        if reseq:
            for k in [k for k in reseq if k < min_pending]:
                del reseq[k]
    by_arrival: Dict[float, list] = {}
    for arrival, inject_time, defer_seq, frame in priced:
        by_arrival.setdefault(arrival, []).append((inject_time, defer_seq, frame))
    for arrival, news in by_arrival.items():
        row = colliders.get(arrival)
        if row is None:
            # Lookahead guarantees arrival >= window end > sim._now:
            # always a strict-future push, exactly where serial put it.
            for _inject, _dseq, frame in news:
                sim._seq += 1
                heappush(queue, (arrival, sim._seq, frame))
            continue
        # Existing entries in push (= seq) order, each with its recovered
        # virtual push time.  Seqs in a same-time cohort are push-ordered,
        # so push times are monotone along this list.
        row.sort()
        merged: List[Tuple[float, Any, Optional[float], bool]] = []
        for seq_e, ev in row:
            pushed_at = getattr(ev, "sent_at", None)
            if pushed_at is None and reseq is not None:
                pushed_at = reseq.get(seq_e)
            if pushed_at is None:
                pushed_at = _push_vt(marks, seq_e, sim) if marks is not None else -1.0
            merged.append((pushed_at, ev, seq_e, False))
        n_existing = len(merged)
        appended_only = True
        for inject_time, defer_seq, frame in news:
            # Serial-before elements form a prefix of *merged*: push times
            # are monotone, and canonical-earlier frames this merge placed
            # (is_new) are serial-before by construction.  Insert before
            # the first existing entry the serial engine pushed after us.
            pos = len(merged)
            for j, (pushed_at, _ev, seq_e, is_new) in enumerate(merged):
                if is_new:
                    continue
                if pushed_at < inject_time:
                    continue
                if pushed_at == inject_time:
                    if defer_seq is None:
                        # Pushed at the very instant of our inject, in
                        # another shard: the cross-shard same-timestamp
                        # interleave no shard-local record can reconstruct.
                        raise _ShardTaint("same-instant push tie at shared arrival time")
                    # Locally-held frame: the defer snapshotted the kernel
                    # seq counter at the inject dispatch, which is exactly
                    # where the serial engine would have heappushed us —
                    # entries with a higher seq were pushed after.
                    if seq_e <= defer_seq:
                        continue
                pos = j
                break
            if pos != len(merged):
                appended_only = False
            merged.insert(pos, (inject_time, frame, None, True))
        if appended_only:
            # Every deferred frame lands after all pending entries: fresh
            # counter seqs already sort correctly.
            for _pushed, frame, _seq, _new in merged[n_existing:]:
                sim._seq += 1
                heappush(queue, (arrival, sim._seq, frame))
            continue
        # Renumber the whole same-time cohort with fresh consecutive
        # integers in serial order.  Seqs only ever compare within one
        # timestamp, and the new seqs stay below every future push, so
        # this is invisible outside the cohort.
        base = sim._seq
        sim._seq += len(merged)
        remap: Dict[float, float] = {}
        for i, (pushed_at, obj, seq_e, is_new) in enumerate(merged):
            nseq = base + 1 + i
            if is_new:
                queue.append((arrival, nseq, obj))
            else:
                remap[seq_e] = nseq
                if getattr(obj, "sent_at", None) is None and reseq is not None:
                    # Non-frame entries carry no sent_at; keep their true
                    # push time reachable under the new seq.
                    reseq[nseq] = pushed_at
        for k, item in enumerate(queue):
            if item[0] == arrival and item[1] in remap:
                queue[k] = (arrival, remap[item[1]], item[2])
        heapify(queue)


def _drain_router(job, plan: ShardPlan, shard_id: int):
    """Split this window's deferred frames into locally-kept entries and
    per-destination-shard wire records (exporting the latter)."""
    fab = job.fabric
    router = fab.shard_router
    node_of = fab._node_of
    shard_of_node = plan.shard_of_node
    local: list = []
    exports: Dict[int, list] = {}
    for frame, inject_time, t_head, ser, extra_delay, seq, sim_seq in router.records:
        dst_shard = shard_of_node[node_of[frame.dst]]
        if dst_shard == shard_id:
            local.append((frame, inject_time, t_head, ser, extra_delay, seq, sim_seq))
        else:
            rec = (
                inject_time,
                frame.src,
                seq,
                frame.dst,
                frame.size,
                frame.kind,
                t_head,
                ser,
                extra_delay,
                _encode_payload(frame.payload),
            )
            fab.export_frame(frame)
            exports.setdefault(dst_shard, []).append(rec)
    router.records = []
    return local, exports


# ---------------------------------------------------------------- worker side


def _shard_worker_main(job, plan: ShardPlan, shard_id: int, conn) -> None:
    """Forked worker: own Simulator copy, window loop, audited finalize."""
    try:
        _shard_worker_loop(job, plan, shard_id, conn)
    except BaseException as exc:  # noqa: BLE001 - report, never hang the pool
        try:
            conn.send(("crash", type(exc).__name__, str(exc), traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


def _local_done_info(job, crash_times: Dict[int, float]):
    """``(done_at, kind, last_proc)`` once every local process has finished
    or crashed, else ``None``.

    ``done_at`` is the local completion time — the moment the last local
    blocker was removed (a finish, or a crash of a never-finished proc);
    ``kind`` says which removed it (``"tie"`` when a finish and a crash
    coincide exactly — the parent cannot reconstruct the serial dispatch
    order and falls back).  ``last_proc`` is the *dispatch-order* last
    finisher (``finish_times`` is insertion-ordered, and finish events
    dispatch in time order), the process that serially would flip the
    all-done flag inside its own finish and never park.  A shard whose
    every local proc is absent reports ``(None, None, None)``: vacuously
    done, exactly as its procs never enter the serial scan.
    """
    done_at = kind = last_proc = None
    for proc, p in job.processes.items():
        if proc in job.finish_times:
            t, k = job.finish_times[proc], "finish"
        elif p.crashed:
            t, k = crash_times.get(proc), "crash"
            if t is None:  # pragma: no cover - hook precedes every start
                return None
        else:
            return None
        if done_at is None or t > done_at:
            done_at, kind = t, k
        elif t == done_at and k != kind:
            kind = "tie"
    if kind == "finish":
        last_proc = next(reversed(job.finish_times))
    return (done_at, kind, last_proc)


def _shard_worker_loop(job, plan: ShardPlan, shard_id: int, conn) -> None:
    sim = job.sim
    fab = job.fabric
    fab.shard_router = _ShardRouter()
    local_set = set(plan.local_procs[shard_id])
    job.membership.local_procs = local_set
    job._shard_mode = True
    # Replayed crashes stamp their sim time: local completion (and the
    # parent's post-completion-crash taint check) needs removal *times*,
    # which Process/membership bookkeeping does not retain.
    crash_times: Dict[int, float] = {}
    fab.on_crash.append(lambda p: crash_times.__setitem__(p, sim.now))
    # Push-time checkpoints for serial-true merge placement: each clock
    # advance closes a timestamp, so (seq counter, vtime) pairs let the
    # merge recover the exact virtual time any pending heap entry was
    # pushed at (see _push_vt).  Chains the inherited hook (arena trimmer).
    marks: List[Tuple[int, float]] = []
    # Push times of renumbered non-frame entries (new seq -> virtual push
    # time); renumbering moves them past the marks' seq range.
    reseq: Dict[int, float] = {}
    _prev_advance = sim.on_advance

    def _mark_advance(_append=marks.append, _sim=sim, _prev=_prev_advance):
        _append((_sim._seq, _sim._now))
        if _prev is not None:
            _prev()

    sim.on_advance = _mark_advance
    # Start only this shard's processes, in proc order — the local t=0
    # bucket order is exactly the serial order's projection onto the shard.
    for proc in plan.local_procs[shard_id]:
        if proc in job.absent:
            continue
        job._start_process(proc, job._app_factory(job.mpis[proc], **job._app_kwargs))
    conn.send(("ready", sim.peek()))
    # Locally-kept deferred frames are *held* until the next barrier and
    # priced in one sorted batch with that window's imports: pricing them
    # eagerly at window end would order every local frame ahead of every
    # relayed one, where serial interleaves them by (inject_time, src).
    held: list = []
    release_rx: Optional[int] = None
    while True:
        cmd = conn.recv()
        op = cmd[0]
        if op == "step":
            _horizon, until, imports = cmd[1], cmd[2], cmd[3]
            try:
                _merge_deferred(job, plan, held, imports, marks, reseq)
            except _ShardTaint as taint:
                # Unorderable window: report instead of guessing.  The
                # parent abandons the pool and reruns serially; this
                # worker just parks until the pipe closes.
                conn.send(("taint", str(taint)))
                continue
            held = []
            if _horizon is not None:
                sim.run_until_before(_horizon)
            else:
                # Final window: inclusive of events at the horizon,
                # clock parked at `until`, exactly like the serial path.
                sim.run(until)
            held, exports = _drain_router(job, plan, shard_id)
            if any(
                job.pmls[p].any_source_posts
                for p in plan.local_procs[shard_id]
                if p in job.pmls
            ):
                # Wildcard matching is order-sensitive at equal
                # timestamps: deferred-frame seqs are assigned at the
                # merge, not at serial inject dispatch, so an ANY_SOURCE
                # receive can claim a different message than the serial
                # engine's.  Report instead of guessing — the parent
                # reruns serially (sharded state is discarded, so a
                # window that already diverged costs nothing but time).
                conn.send(("taint", "any-source receive posted"))
                continue
            wakes = job._drain_wakes
            job._drain_wakes = []
            conn.send(
                (
                    "barrier",
                    exports,
                    sim.peek(),
                    bool(held),
                    _local_done_info(job, crash_times),
                    wakes,
                    max(crash_times.values()) if crash_times else None,
                )
            )
        elif op == "release":
            # Global completion established: flip the all-done flag so the
            # parked finalize-drain loops exit.  The wakes land in the sim
            # bucket and dispatch in the next window.  The delivery count
            # snapshot backs the tied-completion taint check: a frame
            # delivered to a finished proc *after* the release would hit a
            # stale endpoint waiter the serial engine's last finisher does
            # not have.
            job._shard_release_drain(cmd[1])
            release_rx = sum(
                fab.endpoints[p].frames_received
                for p in local_set
                if p in job.finish_times
            )
            conn.send(("released", sim.peek()))
        elif op == "exit":
            # Teardown (taint/fallback paths): an explicit op rather than
            # EOF, because sibling workers inherit this pipe's parent end
            # across the sequential forks — closing it in the parent alone
            # never EOFs a worker blocked in recv().
            return
        elif op == "finish":
            until, audit, allow_lost = cmd[1], cmd[2], cmd[3]
            if held:  # pragma: no cover - parent drains deferrals first
                raise RuntimeError("finish with unmerged deferred frames")
            res = _finalize_shard(job, plan, shard_id, until, audit, allow_lost)
            res["post_release_rx"] = (
                sum(
                    fab.endpoints[p].frames_received
                    for p in local_set
                    if p in job.finish_times
                )
                - release_rx
                if release_rx is not None
                else 0
            )
            conn.send(("result", res))
            return
        else:  # pragma: no cover - protocol error
            raise RuntimeError(f"unknown shard command {op!r}")


def _finalize_shard(
    job, plan: ShardPlan, shard_id: int, until, audit: bool, allow_lost: bool
) -> dict:
    """Per-shard teardown: serial ``Job.run`` epilogue projected onto the
    shard's processes, the balance audit included, returned picklable."""
    sim = job.sim
    fab = job.fabric
    error = None
    try:
        job._check_guard_violations()
        blocked = {
            p.name: (p._waiting_on.label if p._waiting_on is not None else "<runnable>")
            for proc, p in job.processes.items()
            if p.alive and proc not in job.finish_times
        }
        exceptions = [
            (proc, type(p.exception).__name__, str(p.exception))
            for proc, p in sorted(job.processes.items())
            if p.exception is not None
        ]
        # Mirror the serial epilogue's control flow: the audit runs only
        # on paths where `Job.run` would reach it (no process exception,
        # no DeadlockError, no lost-rank MpiError about to be raised).
        # `blocked` is shard-local here — a remote shard's deadlock makes
        # the parent raise before it ever reads this shard's audit state.
        lost = sorted(job.membership.lost_ranks)
        skip = bool(exceptions)
        if blocked and until is None and not (lost and allow_lost):
            skip = True
        if lost and not allow_lost:
            skip = True
        if audit and not skip:
            job.audit()
    except BaseException as exc:  # noqa: BLE001 - audit failures must surface
        error = (type(exc).__name__, str(exc), traceback.format_exc())
        blocked = {}
        exceptions = []
    local_procs = plan.local_procs[shard_id]
    interner = job.interner
    return {
        "shard": shard_id,
        "error": error,
        "exceptions": exceptions,
        "blocked": blocked,
        "lost_ranks": sorted(job.membership.lost_ranks),
        "finish_times": dict(job.finish_times),
        "app_results": dict(job.app_results),
        "stats": {p: job.protocols[p].stats() for p in local_procs},
        "fabric_stats": fab.stats(),
        "frames": fab.total_frames,
        "bytes": fab.total_bytes,
        "by_kind": dict(fab.frames_by_kind),
        "events": sim.events_dispatched,
        "crash_fired": job._crash_fired,
        "now": sim.now,
        "interned": (
            (interner.hits, interner.misses) if interner is not None else (0, 0)
        ),
        "traffic_committed": (
            dict(job.traffic._committed) if job.traffic is not None else None
        ),
        "stranded_by_site": job._strand_attribution(),
    }


# ---------------------------------------------------------------- parent side


class _DrainRace(Exception):
    """A drain-loop interleaving the shards cannot replay byte-identically.

    Raised by the parent's taint checks around the finalize-drain release
    (a frame wake or crash at/after the global completion time, an
    ambiguous completion trigger, relay traffic after the release).  The
    run is abandoned and re-executed on the serial engine — correctness
    is never traded for the speedup.
    """


def run_parallel(job, until=None, allow_lost_ranks: bool = False, audit=None):
    """Execute *job* across a shard pool; returns a merged ``JobResult``
    byte-equivalent to the serial engine's (or the serial result itself,
    annotated with the fallback reasons, when a hazard forbids sharding).
    """
    from repro.harness.runner import JobResult  # local: runner imports us

    if job._app_factory is None:
        raise RuntimeError("run_parallel before launch()")
    if audit is None:
        audit = until is None
    requested = job.parallel.workers
    plan = ShardPlan.build(job.placement, requested)
    plan.validate()
    hazards = classify_hazards(job, plan)
    if hazards:
        result = job._run_serial_fallback(until=until, allow_lost_ranks=allow_lost_ranks, audit=audit)
        result.parallel = {
            "workers": 1,
            "requested": requested,
            "shards": 1,
            "fallback": hazards,
            "lookahead": plan.lookahead,
            "windows": 0,
        }
        return result
    lookahead = plan.lookahead
    n_shards = plan.n_shards
    ctx = mp.get_context("fork")
    conns = []
    workers = []
    windows = 0
    released = False
    release_comp = 0
    tie_release = False
    infos: List[Optional[tuple]] = [None] * n_shards
    max_wake: Optional[float] = None
    max_crash: Optional[float] = None

    def barrier_round() -> None:
        nonlocal peeks, held, max_wake, max_crash, windows
        new_peeks, new_held, new_infos, wake, crash, got_exports = _collect_barrier(
            conns, pending
        )
        peeks, held = new_peeks, new_held
        windows += 1
        for sid, info in enumerate(new_infos):
            if info is not None:
                infos[sid] = info
        if wake is not None:
            max_wake = wake if max_wake is None else max(max_wake, wake)
        if crash is not None:
            max_crash = crash if max_crash is None else max(max_crash, crash)
        if released and (got_exports or any(held)):
            # The release drains run on empty inboxes and must emit
            # nothing; any relay traffic after it is off-script.
            raise _DrainRace("relay traffic after drain release")

    def attempt_release() -> bool:
        """Once every shard reports local completion, establish the global
        completion time, run the taint checks, and command the release."""
        nonlocal released, release_comp, tie_release
        if released or any(info is None for info in infos):
            return False
        real = [info for info in infos if info[0] is not None]
        if not real:
            return False  # no process anywhere: serial never flips either
        t_done = max(info[0] for info in real)
        winners = [info for info in real if info[0] == t_done]
        kinds = {info[1] for info in winners}
        if kinds == {"finish"}:
            if len(winners) == 1:
                last_proc, comp = winners[0][2], 2
            else:
                # Several shards finish at exactly t_done (the norm for
                # symmetric SPMD apps): which proc serially skips the park
                # depends on batch order no shard can see.  The two-event
                # compensation holds regardless of identity; the one
                # unverifiable artifact — the skipped proc's stale endpoint
                # waiter — is guarded by the post-release delivery check.
                last_proc, comp = None, 2
                tie_release = True
        elif kinds == {"crash"}:
            # Completion triggered by a crash: serially *every* finished
            # proc parked and wakes — no park to retire, no compensation.
            last_proc, comp = None, 0
        else:
            raise _DrainRace("ambiguous completion trigger")
        if max_wake is not None and max_wake >= t_done:
            # A parked proc drained a frame at/after the completion time;
            # serially it would have exited the drain loop first.
            raise _DrainRace("drain wake at/after completion")
        if max_crash is not None and max_crash >= t_done:
            raise _DrainRace("crash at/after completion")
        for sid in range(n_shards):
            conns[sid].send(("release", last_proc))
        for sid in range(n_shards):
            peeks[sid] = _recv(conns[sid], "released")[1]
        released = True
        release_comp = comp
        return True

    try:
        for sid in range(n_shards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker_main,
                args=(job, plan, sid, child_conn),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            workers.append(proc)
        peeks = [_recv(conns[s], "ready")[1] for s in range(n_shards)]
        pending: List[List[Any]] = [[] for _ in range(n_shards)]
        held = [False] * n_shards
        last_horizon = 0.0
        while True:
            attempt_release()
            live = [t for t in peeks if t is not None]
            deferred = any(pending) or any(held)
            if not live and not deferred:
                final_t = None
            else:
                t = min(live) if live else last_horizon
                if deferred and last_horizon < t:
                    # Deferred arrivals (routed or still held in their
                    # source shard) are only bounded below by the last
                    # horizon; the true minimum may sit anywhere past it.
                    t = last_horizon
                final_t = t
            if final_t is None or (until is not None and final_t + lookahead > until):
                break
            horizon = final_t + lookahead
            for sid in range(n_shards):
                conns[sid].send(("step", horizon, None, pending[sid]))
                pending[sid] = []
            barrier_round()
            last_horizon = max(last_horizon, horizon)
        if until is not None:
            # Inclusive epilogue: every shard runs `sim.run(until)` so its
            # clock parks at the horizon exactly as the serial engine's.
            # Repeats while anything at or below `until` remains — a late
            # release wake, a deferred frame whose priced arrival lands
            # inside the horizon — so the dispatched-event set matches the
            # serial run's exactly; arrivals past `until` merge into the
            # queue undispatched (the in-flight strand audit sees them).
            while True:
                for sid in range(n_shards):
                    conns[sid].send(("step", None, until, pending[sid]))
                    pending[sid] = []
                barrier_round()
                if attempt_release():
                    continue
                live = [t for t in peeks if t is not None and t <= until]
                if not live and not any(pending) and not any(held):
                    break
        for sid in range(n_shards):
            conns[sid].send(("finish", until, audit, allow_lost_ranks))
        shard_results = [_recv(conns[sid], "result")[1] for sid in range(n_shards)]
        if tie_release and any(res["post_release_rx"] for res in shard_results):
            raise _DrainRace("post-release delivery under tied completion")
    except _DrainRace as race:
        result = job._run_serial_fallback(until=until, allow_lost_ranks=allow_lost_ranks, audit=audit)
        result.parallel = {
            "workers": 1,
            "requested": requested,
            "shards": 1,
            "fallback": [f"drain_race: {race}"],
            "lookahead": lookahead,
            "windows": windows,
        }
        return result
    finally:
        for conn in conns:
            try:
                conn.send(("exit",))
            except (BrokenPipeError, OSError):
                pass  # worker already finished or died
            conn.close()
        for proc in workers:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - hung worker backstop
                proc.terminate()
    meta = {
        "workers": n_shards,
        "requested": requested,
        "shards": n_shards,
        "fallback": [],
        "lookahead": lookahead,
        "windows": windows,
    }
    return _merge_results(
        job, plan, shard_results, JobResult, meta,
        until=until, allow_lost_ranks=allow_lost_ranks,
        release_comp=release_comp,
    )


def _recv(conn, expected: str, also: Tuple[str, ...] = ()):
    msg = conn.recv()
    if msg[0] == "crash":
        _name, text, tb = msg[1], msg[2], msg[3]
        raise RuntimeError(f"shard worker died: {_name}: {text}\n{tb}")
    if msg[0] != expected and msg[0] not in also:  # pragma: no cover - protocol error
        raise RuntimeError(f"expected {expected!r} from shard, got {msg[0]!r}")
    return msg


def _collect_barrier(conns, pending):
    """Gather one barrier round: route every export to its destination
    shard's pending-import list; return the per-shard peeks, held-local
    flags, local-completion infos, the max drain-wake and crash times
    reported this round, and whether any shard exported anything."""
    peeks: List[Optional[float]] = [None] * len(conns)
    held = [False] * len(conns)
    infos: List[Optional[tuple]] = [None] * len(conns)
    max_wake: Optional[float] = None
    max_crash: Optional[float] = None
    got_exports = False
    taint: Optional[str] = None
    for sid, conn in enumerate(conns):
        msg = _recv(conn, "barrier", also=("taint",))
        if msg[0] == "taint":
            # Collect the remaining replies before raising so no worker is
            # left blocked mid-send when the pool is torn down.
            taint = msg[1]
            continue
        exports, peek, has_held, info, wakes, crash = msg[1:7]
        peeks[sid] = peek
        held[sid] = has_held
        infos[sid] = info
        if wakes:
            top = max(wakes)
            max_wake = top if max_wake is None else max(max_wake, top)
        if crash is not None:
            max_crash = crash if max_crash is None else max(max_crash, crash)
        if exports:
            got_exports = True
        for dst_shard, records in exports.items():
            pending[dst_shard].extend(records)
    if taint is not None:
        raise _DrainRace(taint)
    return peeks, held, infos, max_wake, max_crash, got_exports


def _merge_results(
    job, plan, shard_results, JobResult, meta, until, allow_lost_ranks, release_comp=0
):
    from repro.mpi.errors import DeadlockError, MpiError

    for res in shard_results:
        if res["error"] is not None:
            name, text, tb = res["error"]
            exc_type = AssertionError if name == "AssertionError" else RuntimeError
            raise exc_type(f"shard {res['shard']} finalize failed: {name}: {text}\n{tb}")
    exceptions = sorted(
        (exc for res in shard_results for exc in res["exceptions"]),
    )
    if exceptions:
        proc, name, text = exceptions[0]
        raise RuntimeError(f"process {proc} died in sharded run: {name}: {text}")
    lost = shard_results[0]["lost_ranks"]
    crash_fired = shard_results[0]["crash_fired"]
    for res in shard_results[1:]:
        # Crash replay is global state every shard must agree on.
        if res["lost_ranks"] != lost or res["crash_fired"] != crash_fired:
            raise AssertionError(
                "shards disagree on crash replay: "
                f"lost_ranks {[r['lost_ranks'] for r in shard_results]}, "
                f"crash_fired {[r['crash_fired'] for r in shard_results]}"
            )
    blocked: Dict[str, str] = {}
    for res in shard_results:
        blocked.update(res["blocked"])
    if blocked and until is None and not (lost and allow_lost_ranks):
        raise DeadlockError(blocked)
    if lost and not allow_lost_ranks:
        raise MpiError(f"application lost ranks {lost}: every replica failed")
    # Cross-shard relay conservation: what left one shard entered another.
    fstats = [res["fabric_stats"] for res in shard_results]
    for frame_key, env_key in (
        ("frames_exported", "frames_imported"),
        ("envs_exported", "envs_imported"),
    ):
        out = sum(s[frame_key] for s in fstats)
        back = sum(s[env_key] for s in fstats)
        if out != back:
            raise AssertionError(f"relay leak: {frame_key} {out} != {env_key} {back}")
    merged_fab: Dict[str, Any] = {}
    sum_keys = (
        "frames_acquired", "frames_allocated", "frames_released",
        "frames_stranded", "envs_stranded", "envs_duplicated",
        "fault_drops", "fault_dups", "fault_delays",
        "frames_exported", "frames_imported", "envs_exported", "envs_imported",
        "frame_pool_size", "frames_trimmed", "total_frames", "total_bytes",
    )
    for key in sum_keys:
        merged_fab[key] = sum(s[key] for s in fstats)
    # An imported frame is re-acquired in its destination shard; subtract
    # the double count so the merged figure equals the serial acquire count.
    merged_fab["frames_acquired"] -= merged_fab["frames_imported"]
    merged_fab["frame_high_water"] = max(s["frame_high_water"] for s in fstats)
    sites: Dict[str, List[int]] = {}
    for s in fstats:
        for site, (nf, ne) in s["strands_by_site"].items():
            cell = sites.setdefault(site, [0, 0])
            cell[0] += nf
            cell[1] += ne
    merged_fab["strands_by_site"] = {k: tuple(v) for k, v in sites.items()}
    by_kind: Dict[str, int] = {}
    for res in shard_results:
        for kind, n in res["by_kind"].items():
            by_kind[kind] = by_kind.get(kind, 0) + n
    finish_times: Dict[int, float] = {}
    app_results: Dict[int, Any] = {}
    stats: Dict[int, dict] = {}
    for res in shard_results:
        finish_times.update(res["finish_times"])
        app_results.update(res["app_results"])
        stats.update(res["stats"])
    stats = dict(sorted(stats.items()))
    finish_times = dict(sorted(finish_times.items()))
    app_results = dict(sorted(app_results.items()))
    # Crash callbacks replay in every shard; each fires once per shard but
    # must count once globally.  `release_comp` subtracts the drain-release
    # wake of the globally last finisher — the one park the serial engine
    # never performs (it flips the all-done flag inside its own finish).
    events = sum(res["events"] for res in shard_results)
    events -= (plan.n_shards - 1) * crash_fired
    events -= release_comp
    stranded_by_site: Dict[str, Dict[str, int]] = {}
    for res in shard_results:
        for site, cell in res["stranded_by_site"].items():
            entry = stranded_by_site.setdefault(site, {"frames": 0, "envs": 0})
            entry["frames"] += cell["frames"]
            entry["envs"] += cell["envs"]
    requests = {}
    if job.traffic is not None:
        book = job.traffic
        for res in shard_results:
            committed = res["traffic_committed"] or {}
            for rank, done in committed.items():
                book.commit(rank, done)
        requests = book.totals()
        book.audit()
    interned = sum(res["interned"][0] for res in shard_results)
    misses = sum(res["interned"][1] for res in shard_results)
    result = JobResult(
        runtime=max(finish_times.values()) if finish_times else max(
            res["now"] for res in shard_results
        ),
        finish_times=finish_times,
        app_results=app_results,
        stats=stats,
        fabric={
            "frames": sum(res["frames"] for res in shard_results),
            "bytes": sum(res["bytes"] for res in shard_results),
            "by_kind": by_kind,
            **merged_fab,
        },
        events=events,
        payload_interned=interned,
        payload_misses=misses,
        requests_offered=requests.get("requests_offered", 0),
        requests_admitted=requests.get("requests_admitted", 0),
        requests_rejected=requests.get("requests_rejected", 0),
        requests_completed=requests.get("requests_completed", 0),
        requests_lost=requests.get("requests_lost", 0),
        lost_ranks=lost,
        stranded_by_site=stranded_by_site,
    )
    result.parallel = meta
    return result
