"""Synchronization primitives: events, timeouts, composite waits, mailboxes.

These are the objects generator processes yield.  A process may yield:

* an :class:`Event` (wait until it succeeds or fails),
* a :class:`Timeout` (an event pre-scheduled to succeed after a delay),
* an :class:`AllOf` / :class:`AnyOf` composite.

Values flow back into the generator through ``.send(value)``; failures are
thrown in with ``.throw(exc)``.

Hot-path notes
--------------
Events are the unit of simulation work — every frame delivery, CPU charge
and process wake-up allocates one — so the class is kept deliberately lean:
``__slots__`` everywhere, the callback list allocated lazily on first
``add_callback``, and zero-delay completion appended straight to the
simulator's near-horizon bucket (one FIFO append — no sequence counter,
no tuple, no heap sift) without going through :meth:`Simulator.schedule`.
In heap-only mode (``Simulator(bucketed=False)``) the same sites push the
seed-shaped ``(now, seq, event)`` heap entry instead.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Deque, Iterable, List, Optional

from collections import deque

from repro.sim.kernel import SimulationError, Simulator

__all__ = ["Event", "Timeout", "AllOf", "AnyOf", "Mailbox", "Interrupt"]


class Interrupt(Exception):
    """Thrown into a process when it is interrupted (e.g. crash injection)."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


_PENDING = object()


class Event:
    """A one-shot occurrence processes can wait on.

    An event starts *pending*; it is completed exactly once via
    :meth:`succeed` or :meth:`fail`.  Completion schedules the event on the
    simulator queue; callbacks run when the event fires.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_fired", "cancelled", "label")

    def __init__(self, sim: Simulator, label: str = "") -> None:
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = None
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._fired = False
        self.cancelled = False
        self.label = label

    # -------------------------------------------------------------- queries
    @property
    def triggered(self) -> bool:
        """True once succeed/fail has been called (may not have fired yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event has fired and callbacks have run."""
        return self._fired

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event not yet completed")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event has no value yet")
        return self._value

    # ----------------------------------------------------------- completion
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        if self._value is not _PENDING:
            raise SimulationError(f"event {self.label!r} already completed")
        self._value = value
        self._ok = True
        if delay == 0.0:
            sim = self.sim
            if sim._bucketed:
                sim._bucket.append(self)
            else:
                sim._seq += 1
                heappush(sim._queue, (sim._now, sim._seq, self))
        else:
            self.sim.schedule(self, delay)
        return self

    def abandon(self) -> None:
        """Neutralize a pending wait without scheduling it.

        The event becomes *triggered* — producers that skip triggered
        waiters (:meth:`Mailbox.put`, :meth:`Endpoint.deliver`) pass it
        over — and *cancelled*, so the dispatch loop drops it if it was
        ever queued.  No callback will run and no event is dispatched.
        The sharded runner uses this to retire the one drain-loop park
        the serial engine never creates (see
        :meth:`repro.harness.runner.Job._shard_release_drain`).
        """
        if self._value is _PENDING:
            self._value = None
            self._ok = True
        self.cancelled = True

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        if self._value is not _PENDING:
            raise SimulationError(f"event {self.label!r} already completed")
        if not isinstance(exc, BaseException):
            raise TypeError("Event.fail expects an exception instance")
        self._value = exc
        self._ok = False
        self.sim.schedule(self, delay)
        return self

    # ------------------------------------------------------------- dispatch
    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register *fn* to run when the event fires.

        If the event has already fired, *fn* runs immediately; this keeps
        late waiters correct.
        """
        if self._fired:
            fn(self)
        elif self.callbacks is None:
            self.callbacks = [fn]
        else:
            self.callbacks.append(fn)

    def fire(self) -> None:
        self._fired = True
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for fn in callbacks:
                fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending" if not self.triggered else ("ok" if self._ok else "failed")
        return f"<Event {self.label!r} {state}>"


class Timeout(Event):
    """An event that succeeds ``delay`` seconds after construction.

    Construction is the PML's per-frame CPU-charge path, so the generic
    ``Event.__init__`` + ``succeed`` pair is inlined into direct slot
    writes plus one heap push.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: Simulator, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule event {delay} s in the past")
        self.sim = sim
        self.callbacks = None
        self._value = value
        self._ok = True
        self._fired = False
        self.cancelled = False
        self.delay = delay
        if delay or not sim._bucketed:
            sim._seq += 1
            heappush(sim._queue, (sim._now + delay, sim._seq, self))
        else:
            sim._bucket.append(self)

    @property
    def label(self) -> str:  # shadows the Event slot; Timeouts are immutable
        return f"timeout({self.delay})"


class AllOf(Event):
    """Succeeds when every child event has succeeded.

    Value is the list of child values in construction order.  Fails fast if
    any child fails.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: Simulator, events: Iterable[Event]) -> None:
        super().__init__(sim, label="all_of")
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for ev in self._children:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(Event):
    """Succeeds when the first child succeeds; value is ``(index, value)``."""

    __slots__ = ("_children",)

    def __init__(self, sim: Simulator, events: Iterable[Event]) -> None:
        super().__init__(sim, label="any_of")
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf requires at least one event")
        for idx, ev in enumerate(self._children):
            ev.add_callback(lambda e, i=idx: self._on_child(i, e))

    def _on_child(self, idx: int, ev: Event) -> None:
        if self.triggered:
            return
        if ev.ok:
            self.succeed((idx, ev.value))
        else:
            self.fail(ev.value)


class Mailbox:
    """An unbounded FIFO queue with event-based blocking receive.

    Used by the network fabric to hand frames to endpoints, and by the
    failure detector to deliver notifications.  ``put`` never blocks.
    """

    __slots__ = ("sim", "_items", "_getters", "label")

    def __init__(self, sim: Simulator, label: str = "") -> None:
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self.label = label

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        self._items.append(item)
        # Wake exactly one waiter per item, preserving FIFO fairness.
        while self._getters and self._items:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            getter.succeed(self._items.popleft())

    def get(self) -> Event:
        """Return an event yielding the next item (immediately if queued)."""
        ev = Event(self.sim, label=f"mailbox.get({self.label})")
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def get_nowait(self) -> Any:
        if not self._items:
            raise SimulationError(f"mailbox {self.label!r} is empty")
        return self._items.popleft()

    def peek_all(self) -> List[Any]:
        """Non-destructive snapshot of queued items (diagnostics only)."""
        return list(self._items)

    def drain(self) -> List[Any]:
        items = list(self._items)
        self._items.clear()
        return items
