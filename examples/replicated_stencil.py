#!/usr/bin/env python
"""Protocol comparison on an ANY_SOURCE workload (the paper's §3.1 claim).

Runs the HPCCG-style halo/allreduce loop — whose receives use
MPI_ANY_SOURCE — under four configurations and prints runtime, unexpected-
queue pressure, and message counts:

* native (no replication)
* SDR-MPI             — anonymous receptions resolved locally (Fig. 2 right)
* leader-based (rMPI) — the leader decides, followers post late (Fig. 2 left)
* mirror (MR-MPI)     — no leader, but O(q·r²) message cost

Expected shape: SDR ≈ native + acks; leader pays extra latency *and* piles
messages into the unexpected queue; mirror roughly doubles wire traffic.

Run:  python examples/replicated_stencil.py
"""

from repro import Job, ReplicationConfig, cluster_for
from repro.apps.hpccg import hpccg_rank
from repro.harness.report import render_table


def run(protocol: str, n=16, iters=30):
    if protocol == "native":
        cfg = ReplicationConfig(degree=1, protocol="native")
    else:
        cfg = ReplicationConfig(degree=2, protocol=protocol)
    cluster = cluster_for(n, cfg.degree, compute_noise=0.05)
    job = Job(n, cfg=cfg, cluster=cluster)
    res = job.launch(hpccg_rank, nx=32, ny=32, nz=32, iters=iters).run()
    return {
        "runtime_ms": res.runtime * 1e3,
        "unexpected": res.stat_total("unexpected_count"),
        "frames": res.fabric["frames"],
        "bytes": res.fabric["bytes"],
    }


def main():
    rows = []
    baseline = None
    for protocol in ("native", "sdr", "leader", "mirror"):
        r = run(protocol)
        if protocol == "native":
            baseline = r["runtime_ms"]
        rows.append([
            protocol,
            f"{r['runtime_ms']:.2f}",
            f"{100 * (r['runtime_ms'] / baseline - 1):.2f}",
            r["unexpected"],
            r["frames"],
            f"{r['bytes'] / 1e6:.1f}",
        ])
    print(render_table(
        "HPCCG-style ANY_SOURCE stencil, 16 ranks (r=2 where replicated)",
        ["protocol", "runtime (ms)", "overhead %", "unexpected msgs", "frames", "MB on wire"],
        rows,
    ))
    print("\npaper claim (§3.1, Table 2): SDR-MPI does not degrade on anonymous\n"
          "receptions, unlike leader-based protocols; mirror pays r^2 messages.")


if __name__ == "__main__":
    main()
