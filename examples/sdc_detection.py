#!/usr/bin/env python
"""Silent-data-corruption detection with the redMPI-style baseline (§2.4).

Each replica ships a payload hash to the other replica set's receiver;
comparing its own copy's hash against the foreign one flags silent faults.
We inject a bit-flip into one replica's outgoing message and show that the
receiving side detects exactly one corruption event.

Run:  python examples/sdc_detection.py
"""

import numpy as np

from repro import Job, ReplicationConfig, cluster_for


def stream_app(mpi, messages=20):
    """Rank 0 streams real payloads to rank 1."""
    if mpi.rank == 0:
        for i in range(messages):
            yield from mpi.send(np.full(16, float(i)), dest=1, tag=7)
    else:
        total = 0.0
        for _ in range(messages):
            data, _ = yield from mpi.recv(source=0, tag=7)
            total += float(data.sum())
        return total


def main():
    cfg = ReplicationConfig(degree=2, protocol="redmpi")
    job = Job(2, cfg=cfg, cluster=cluster_for(2, 2, cores_per_node=1))
    job.launch(stream_app)

    # Inject SDC: replica 1 of rank 0 silently corrupts its next message —
    # the hash it advertises no longer describes the data its sibling
    # receiver got, so the *other* replica set's receiver flags it.
    victim = job.protocols[job.rmap.phys(0, 1)]
    victim.corrupt_next_send(1)

    res = job.run()
    events = []
    for proc, proto in job.protocols.items():
        for ev in getattr(proto, "sdc_events", []):
            events.append((proc, ev))
    print(f"messages streamed : 20 per replica pair")
    print(f"hashes exchanged  : {res.stat_total('hashes_sent')}")
    print(f"SDC events        : {len(events)}")
    for proc, ev in events:
        rank, rep = job.rmap.pair(proc)
        print(f"  detected at p^{rep}_{rank}: logical sender rank {ev.src_rank}, "
              f"message seq {ev.seq}, t={ev.detected_at*1e6:.2f} us")
    assert len(events) == 1, "exactly one injected corruption must be detected"
    print("corruption detected exactly once — replicas disagree, as injected")


if __name__ == "__main__":
    main()
