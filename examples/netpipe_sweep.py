#!/usr/bin/env python
"""Fig. 7 in miniature: NetPipe latency/throughput, native vs SDR-MPI.

Prints the two series the paper plots (latency and throughput per message
size, plus the performance decrease), with the paper's quoted 1-byte
anchors for comparison.

Run:  python examples/netpipe_sweep.py
"""

from repro.apps.netpipe import netpipe_sweep
from repro.harness.report import PAPER_FIG7_POINTS, render_table

SIZES = (1, 8, 64, 1024, 16384, 65536, 1048576, 8388608)


def main():
    native = netpipe_sweep("native", sizes=SIZES, iters=10)
    sdr = netpipe_sweep("sdr", sizes=SIZES, iters=10)

    rows = []
    for size in SIZES:
        lat_n = native[size]["latency_s"] * 1e6
        lat_s = sdr[size]["latency_s"] * 1e6
        rows.append([
            size,
            f"{lat_n:.2f}",
            f"{lat_s:.2f}",
            f"{100 * (lat_s / lat_n - 1):.1f}",
            f"{native[size]['throughput_mbps']:.0f}",
            f"{sdr[size]['throughput_mbps']:.0f}",
        ])
    print(render_table(
        "Fig. 7 — NetPipe on simulated InfiniBand-20G (r=2)",
        ["bytes", "lat native (us)", "lat SDR (us)", "decrease %", "tput native (Mbps)", "tput SDR (Mbps)"],
        rows,
    ))
    print(f"\npaper anchors: native 1 B = {PAPER_FIG7_POINTS['native_1B_us']} us, "
          f"SDR-MPI 1 B = {PAPER_FIG7_POINTS['sdr_1B_us']} us")


if __name__ == "__main__":
    main()
