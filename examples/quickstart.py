#!/usr/bin/env python
"""Quickstart: run the same MPI program natively and under SDR-MPI.

The program is an ordinary SPMD loop — halo exchange, local compute,
convergence allreduce — written as a generator against the simulated MPI
API.  Nothing in it knows about replication: switching to SDR-MPI is purely
a launcher configuration (the paper's "implemented inside the MPI library"
transparency, §4.1).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Job, ReplicationConfig, cluster_for


def heat_1d(mpi, n_local=64, steps=20):
    """Explicit 1-D heat diffusion on a ring, one block per rank."""
    u = np.sin(np.linspace(0, np.pi, n_local)) + mpi.rank
    left, right = (mpi.rank - 1) % mpi.size, (mpi.rank + 1) % mpi.size
    for step in range(steps):
        # exchange boundary cells with both neighbours
        r_lo = yield from mpi.irecv(source=left, tag=1)
        r_hi = yield from mpi.irecv(source=right, tag=2)
        s_lo = yield from mpi.isend(u[:1].copy(), dest=left, tag=2)
        s_hi = yield from mpi.isend(u[-1:].copy(), dest=right, tag=1)
        yield from mpi.waitall([r_lo, r_hi, s_lo, s_hi])
        padded = np.concatenate((r_lo.data, u, r_hi.data))
        u = u + 0.25 * (padded[:-2] - 2 * u + padded[2:])
        yield from mpi.compute(50e-6)  # model the stencil flops
    total = yield from mpi.allreduce(float(u.sum()), op="sum")
    return total


def main():
    n = 8

    native = Job(n).launch(heat_1d).run()
    print(f"native     : runtime {native.runtime * 1e3:8.3f} ms, "
          f"result {native.app_results[0]:.6f}")

    cfg = ReplicationConfig(degree=2, protocol="sdr")
    replicated = Job(n, cfg=cfg, cluster=cluster_for(n, 2)).launch(heat_1d).run()
    print(f"sdr (r=2)  : runtime {replicated.runtime * 1e3:8.3f} ms, "
          f"result {replicated.app_results[0]:.6f}")

    assert abs(native.app_results[0] - replicated.app_results[0]) < 1e-9, \
        "replicated execution must compute the identical result"
    overhead = (replicated.runtime / native.runtime - 1) * 100
    acks = replicated.stat_total("acks_sent")
    print(f"overhead   : {overhead:.2f} %   ({acks} acks exchanged between replica sets)")


if __name__ == "__main__":
    main()
