#!/usr/bin/env python
"""Fault tolerance demo: the paper's Fig. 3 and Fig. 4 scenarios.

Part 1 (Fig. 3): replica p¹₁ crashes mid-run.  Its substitute p⁰₁ re-sends
the retained messages p¹₀ never got acknowledged and takes over rank 1's
sending duties toward world 1; the application finishes with the correct
result on every surviving replica.

Part 2 (Fig. 4): on top of the crash, the substitute forks a fresh replica
at an application recovery point; the newcomer inherits the substitute's
state, peers replay whatever the substitute had not acknowledged, and the
pairwise pattern resumes — the recovered process finishes too.

Run:  python examples/fault_tolerance_demo.py
"""

import numpy as np

from repro import Job, RecoveryManager, ReplicationConfig, cluster_for


class IterState:
    """Recoverable application state (what the paper's fork would clone)."""

    def __init__(self):
        self.it = 0
        self.acc = 0.0


def exchange_app(mpi, iters=80, state=None):
    """Fig. 3's pattern: rank 1 sends to rank 0, then rank 0 answers."""
    st = state or IterState()
    mpi.register_state(st)  # enables fork-based recovery
    while st.it < iters:
        it = st.it
        if mpi.rank == 1:
            yield from mpi.send(np.array([float(it)]), dest=0, tag=1)
            got, _ = yield from mpi.recv(source=0, tag=2)
        else:
            got, _ = yield from mpi.recv(source=1, tag=1)
            yield from mpi.send(np.array([2.0 * it]), dest=1, tag=2)
        st.acc += float(got[0])
        st.it += 1
        yield from mpi.recovery_point()  # quiescent point for §3.4 respawn
        yield from mpi.compute(2e-6)
    return st.acc


def run(with_recovery: bool):
    cfg = ReplicationConfig(degree=2, protocol="sdr")
    job = Job(2, cfg=cfg, cluster=cluster_for(2, 2, cores_per_node=1))
    job.launch(exchange_app)
    job.crash(rank=1, rep=1, at=100e-6)  # kill p^1_1 mid-run
    manager = None
    if with_recovery:
        manager = RecoveryManager(job)
        job.sim.call_at(200e-6, lambda: manager.request_respawn(1))
    res = job.run()

    label = "fig4 (crash + respawn)" if with_recovery else "fig3 (crash, failover only)"
    print(f"--- {label} ---")
    for proc in sorted(res.app_results):
        rank, rep = job.rmap.pair(proc)
        print(f"  p^{rep}_{rank}: finished at {res.finish_times[proc]*1e3:.3f} ms, "
              f"result {res.app_results[proc]:.1f}")
    print(f"  substitute resends: {res.stat_total('resends')}, "
          f"duplicates dropped: {res.stat_total('duplicates_dropped')}")
    if manager:
        print(f"  respawned physical processes: {manager.respawns_done}")
    # every surviving replica of a rank must agree with the failure-free value
    want = {0: sum(float(i) for i in range(80)), 1: sum(2.0 * i for i in range(80))}
    for proc, val in res.app_results.items():
        rank = job.rmap.rank_of(proc)
        assert abs(val - want[rank]) < 1e-9, (proc, val, want[rank])
    print("  all results correct despite the crash\n")


def main():
    run(with_recovery=False)
    run(with_recovery=True)


if __name__ == "__main__":
    main()
