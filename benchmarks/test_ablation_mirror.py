"""Ablation — mirror (MR-MPI) vs parallel (SDR-MPI) protocol cost (§2.4).

Claims measured:

* message complexity: mirror sends O(q·r²) application messages versus the
  parallel protocol's O(q·r);
* on a bandwidth-bound workload the duplicated data competes for the
  shared NICs — the mechanism behind MR-MPI's up-to-160 % overheads —
  while the parallel protocol only adds tiny acks.
"""


from benchmarks.conftest import record, run_once, scaled
from repro.core.config import ReplicationConfig
from repro.harness.report import render_table
from repro.harness.runner import Job, cluster_for
from repro.scenarios import bandwidth_exchange

#: rank-scale knob: 16 ranks by default, 256 under REPRO_SCALE=paper
N_RANKS, _COUNTS = scaled(16, iters=30)
ITERS = _COUNTS["iters"]


def _run(protocol, n=None):
    n = N_RANKS if n is None else n
    if protocol == "native":
        cfg = ReplicationConfig(degree=1, protocol="native")
    else:
        cfg = ReplicationConfig(degree=2, protocol=protocol)
    job = Job(n, cfg=cfg, cluster=cluster_for(n, cfg.degree))
    return job.launch(bandwidth_exchange, iters=ITERS).run()


def test_mirror_message_complexity_and_bandwidth(benchmark):
    results = {}

    def run_all():
        for protocol in ("native", "sdr", "mirror"):
            results[protocol] = _run(protocol)
        return results

    run_once(benchmark, run_all)
    native = results["native"]
    rows = []
    for protocol in ("native", "sdr", "mirror"):
        res = results[protocol]
        data_frames = sum(
            res.fabric["by_kind"].get(k, 0) for k in ("eager", "rts")
        )
        rows.append([
            protocol,
            f"{res.runtime * 1e3:.2f}",
            f"{100 * (res.runtime / native.runtime - 1):.2f}",
            data_frames,
            f"{res.fabric['bytes'] / 1e9:.3f}",
        ])
    print()
    print(render_table(
        f"Ablation — bandwidth-bound halo exchange ({N_RANKS} ranks, 512 KiB msgs, r=2)",
        ["protocol", "runtime ms", "overhead %", "app msgs", "GB on wire"],
        rows,
    ))
    sdr, mirror = results["sdr"], results["mirror"]
    sdr_msgs = sum(sdr.fabric["by_kind"].get(k, 0) for k in ("eager", "rts"))
    mirror_msgs = sum(mirror.fabric["by_kind"].get(k, 0) for k in ("eager", "rts"))
    record(
        benchmark,
        sdr_overhead_pct=100 * (sdr.runtime / native.runtime - 1),
        mirror_overhead_pct=100 * (mirror.runtime / native.runtime - 1),
        sdr_app_msgs=sdr_msgs,
        mirror_app_msgs=mirror_msgs,
        mirror_bytes=mirror.fabric["bytes"],
        sdr_bytes=sdr.fabric["bytes"],
    )
    # O(q·r²) vs O(q·r): exactly 2x the application messages at r=2
    assert mirror_msgs == 2 * sdr_msgs
    # and roughly 2x the bytes (acks are negligible at 512 KiB payloads)
    assert mirror.fabric["bytes"] > 1.8 * sdr.fabric["bytes"]
    # duplicated data on shared NICs costs real time vs the parallel protocol
    assert mirror.runtime > sdr.runtime
