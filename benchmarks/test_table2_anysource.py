"""Table 2 — HPCCG and CM1: the ANY_SOURCE applications.

Paper (256 procs, r=2): HPCCG 0.002 %, CM1 3.14 %.  The point of the table
(§4.4): SDR-MPI's performance does **not** degrade on anonymous
receptions, unlike rMPI and redMPI, because send-determinism removes the
leader agreement from the critical path.
"""

import pytest

from benchmarks.conftest import record, run_once
from repro.harness.experiments import app_overhead, current_scale
from repro.harness.report import PAPER_TABLE2, overhead_row, render_table

HEADER = ["app", "native s", "repl s", "ovh %", "paper nat", "paper repl", "paper ovh%"]


@pytest.mark.parametrize("app", ["HPCCG", "CM1"])
def test_table2_row(benchmark, app):
    scale = current_scale()
    result = run_once(benchmark, lambda: app_overhead(app, scale))
    row = overhead_row(app, result["native_s"], result["replicated_s"], PAPER_TABLE2[app])
    print()
    print(render_table(
        f"Table 2 row — {app} ({scale.name}, {scale.n_ranks} ranks, r=2)",
        HEADER,
        [row],
    ))
    record(
        benchmark,
        scale=scale.name,
        native_s=result["native_s"],
        replicated_s=result["replicated_s"],
        overhead_pct=result["overhead_pct"],
        paper_overhead_pct=PAPER_TABLE2[app][2],
        unexpected_messages=result["unexpected"],
    )
    # the claim: no degradation from ANY_SOURCE — overhead stays in the
    # same below-5% band as the deterministic NAS codes
    assert 0.0 <= result["overhead_pct"] < 6.5
