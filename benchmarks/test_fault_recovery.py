"""Fault experiments — the paper's Fig. 3 and Fig. 4 scenarios at scale.

The paper's evaluation explicitly defers fault-injection measurements
("Evaluating our protocol with faults is part of the future work", §4.2);
these benches implement that future work on the simulated substrate:
runtime cost of a mid-run replica crash (failover) and of a subsequent
respawn (recovery), on a replicated stencil application.
"""

import numpy as np

from benchmarks.conftest import record, run_once
from repro.core.config import ReplicationConfig
from repro.core.recovery import RecoveryManager
from repro.harness.report import render_table, strand_site_rows
from repro.harness.runner import Job, cluster_for


class StencilState:
    def __init__(self):
        self.it = 0
        self.acc = 0.0


def stencil(mpi, iters=120, state=None):
    st = state or StencilState()
    mpi.register_state(st)
    right = (mpi.rank + 1) % mpi.size
    left = (mpi.rank - 1) % mpi.size
    while st.it < iters:
        got, _ = yield from mpi.sendrecv(
            np.array([float(st.it + mpi.rank)]), dest=right, source=left, sendtag=1, recvtag=1
        )
        st.acc += float(got[0])
        yield from mpi.compute(3e-6)
        st.it += 1
        yield from mpi.recovery_point()
    total = yield from mpi.allreduce(st.acc, op="sum")
    return total


def _job(n=8):
    cfg = ReplicationConfig(degree=2, protocol="sdr")
    return Job(n, cfg=cfg, cluster=cluster_for(n, 2))


def test_fig3_crash(benchmark):
    """Crash p¹₁ mid-run: failover cost and correctness."""
    results = {}

    def run_all():
        clean = _job().launch(stencil).run()
        crashed_job = _job().launch(stencil)
        crashed_job.crash(rank=1, rep=1, at=150e-6)
        crashed = crashed_job.run()
        results.update(clean=clean, crashed=crashed, job=crashed_job)
        return results

    run_once(benchmark, run_all)
    clean, crashed = results["clean"], results["crashed"]
    slowdown = 100 * (crashed.runtime / clean.runtime - 1)
    rows = [
        ["failure-free", f"{clean.runtime * 1e3:.3f}", "-", 0, 0],
        ["crash p^1_1", f"{crashed.runtime * 1e3:.3f}", f"{slowdown:.2f}",
         crashed.stat_total("resends"), crashed.stat_total("duplicates_dropped")],
    ]
    print()
    print(render_table(
        "Fig. 3 scenario — replica crash at t=150us (8 ranks, r=2)",
        ["run", "runtime ms", "slowdown %", "resends", "dups dropped"],
        rows,
    ))
    sheader, srows = strand_site_rows([
        ("failure-free", clean.stranded_by_site),
        ("crash p^1_1", crashed.stranded_by_site),
    ])
    print()
    print(render_table(
        "Fig. 3 strand attribution — frames/envs per fail-stop mechanism",
        sheader, srows,
    ))
    record(benchmark, clean_ms=clean.runtime * 1e3, crashed_ms=crashed.runtime * 1e3,
           slowdown_pct=slowdown, resends=crashed.stat_total("resends"))
    # correctness: all survivors agree with the failure-free result
    want = set(clean.app_results.values())
    assert len(want) == 1
    assert set(crashed.app_results.values()) == want
    assert len(crashed.app_results) == 15  # 16 procs minus the victim


def test_fig4_recovery(benchmark):
    """Crash then respawn: the recovered replica rejoins and finishes."""
    results = {}

    def run_all():
        job = _job()
        job.launch(stencil)
        manager = RecoveryManager(job)
        job.crash(rank=1, rep=1, at=150e-6)
        job.sim.call_at(250e-6, lambda: manager.request_respawn(1))
        res = job.run()
        results.update(res=res, manager=manager, job=job)
        return results

    run_once(benchmark, run_all)
    res, manager, job = results["res"], results["manager"], results["job"]
    print(f"\nrespawned: {manager.respawns_done}; "
          f"resends: {res.stat_total('resends')}, "
          f"duplicates dropped: {res.stat_total('duplicates_dropped')}")
    sheader, srows = strand_site_rows([("crash + respawn", res.stranded_by_site)])
    print(render_table(
        "Fig. 4 strand attribution — frames/envs per fail-stop mechanism",
        sheader, srows,
    ))
    record(benchmark, respawns=len(manager.respawns_done),
           resends=res.stat_total("resends"),
           duplicates=res.stat_total("duplicates_dropped"))
    assert manager.respawns_done == [job.rmap.phys(1, 1)]
    assert len(res.app_results) == 16  # everyone finished, including the newcomer
    assert len(set(res.app_results.values())) == 1  # and they all agree
