"""Ablation — partial replication (§5: "one research direction is to use
partial replication [6]").

Sweep the replicated fraction of ranks on a stencil workload and measure
the trade-off: wire traffic and physical resources saved versus exposure
(which crashes remain survivable).  Elliott et al. [6] combine this with
checkpointing; here we show the replication-side curve.
"""

from benchmarks.conftest import record, run_once, scaled
from repro.core.config import ReplicationConfig
from repro.harness.report import render_table, strand_site_rows
from repro.harness.runner import Job, cluster_for
from repro.scenarios import stencil

#: rank-scale knob: 16 ranks by default, 256 under REPRO_SCALE=paper
N_RANKS, _COUNTS = scaled(16, iters=40)
ITERS = _COUNTS["iters"]


def _run(fraction, n=None):
    n = N_RANKS if n is None else n
    replicated = frozenset(range(int(round(fraction * n))))
    cfg = ReplicationConfig(degree=2, protocol="sdr", replicated_ranks=replicated)
    job = Job(n, cfg=cfg, cluster=cluster_for(n, 2))
    res = job.launch(stencil, iters=ITERS).run()
    return job, res


def test_partial_replication_tradeoff(benchmark):
    results = {}

    def run_all():
        for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
            results[fraction] = _run(fraction)
        return results

    run_once(benchmark, run_all)
    rows = []
    reference = None
    for fraction, (job, res) in sorted(results.items()):
        n_procs = N_RANKS + len([r for r in range(N_RANKS) if job.cfg.rank_is_replicated(r)])
        if reference is None:
            reference = res.runtime
        rows.append([
            f"{fraction:.2f}",
            n_procs,
            f"{res.runtime * 1e3:.3f}",
            f"{100 * (res.runtime / reference - 1):.2f}",
            res.fabric["frames"],
            res.stat_total("acks_sent"),
        ])
    print()
    print(render_table(
        f"Ablation — partial replication sweep ({N_RANKS} ranks, r=2 on the replicated subset)",
        ["replicated frac", "procs", "runtime ms", "vs 0% (%)", "frames", "acks"],
        rows,
    ))
    frames = {f: res.fabric["frames"] for f, (_j, res) in results.items()}
    record(benchmark, frames_by_fraction={str(k): v for k, v in frames.items()})
    # monotone: more replication -> more wire traffic
    fractions = sorted(frames)
    assert all(frames[a] <= frames[b] for a, b in zip(fractions, fractions[1:]))
    # results identical regardless of the replicated fraction
    values = {
        tuple(sorted(set(res.app_results.values())))
        for _f, (_j, res) in results.items()
    }
    assert len(values) == 1


def test_partial_survivability_boundary(benchmark):
    """Replicated ranks survive their crash; unreplicated ones do not."""

    def run():
        job, _ = None, None
        cfg = ReplicationConfig(degree=2, protocol="sdr", replicated_ranks=frozenset({0, 1}))
        job = Job(4, cfg=cfg, cluster=cluster_for(4, 2))
        job.launch(stencil)
        job.crash(1, 1, at=30e-6)  # replicated rank: survivable
        return job.run()

    res = run_once(benchmark, run)
    sheader, srows = strand_site_rows([("crash replicated r1", res.stranded_by_site)])
    print()
    print(render_table(
        "Survivability boundary — frames/envs stranded per fail-stop mechanism",
        sheader, srows,
    ))
    record(benchmark, survivors=len(res.app_results))
    assert len(res.app_results) == 5  # 4 ranks + rank0's replica; victim gone
    assert len(set(res.app_results.values())) == 1
