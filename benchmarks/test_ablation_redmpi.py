"""Ablation — redMPI's overhead grows with non-determinism (§2.4).

The paper: redMPI costs little on deterministic codes (<6.8 %) but up to
29 % when the application makes non-deterministic calls, because it keeps
the leader-based agreement.  SDR-MPI's overhead is insensitive to
ANY_SOURCE.  We run one deterministic and one ANY_SOURCE variant of the
same fan-in loop under both protocols.
"""

from benchmarks.conftest import record, run_once, scaled
from repro.core.config import ReplicationConfig
from repro.harness.report import render_table
from repro.harness.runner import Job, cluster_for
from repro.scenarios import redmpi_fanin

#: rank-scale knob: 8 ranks by default, 256 under REPRO_SCALE=paper
N_RANKS, _COUNTS = scaled(8, rounds=150)
ROUNDS = _COUNTS["rounds"]


def _run(protocol, anonymous, n=None):
    n = N_RANKS if n is None else n
    if protocol == "native":
        cfg = ReplicationConfig(degree=1, protocol="native")
    else:
        cfg = ReplicationConfig(degree=2, protocol=protocol)
    job = Job(n, cfg=cfg, cluster=cluster_for(n, cfg.degree))
    return job.launch(redmpi_fanin, rounds=ROUNDS, anonymous=anonymous).run()


def test_redmpi_overhead_grows_with_nondeterminism(benchmark):
    results = {}

    def run_all():
        for anonymous in (False, True):
            results[("native", anonymous)] = _run("native", anonymous)
            results[("redmpi", anonymous)] = _run("redmpi", anonymous)
            results[("sdr", anonymous)] = _run("sdr", anonymous)
        return results

    run_once(benchmark, run_all)
    rows = []
    overheads = {}
    for protocol in ("redmpi", "sdr"):
        for anonymous in (False, True):
            native_t = results[("native", anonymous)].runtime
            t = results[(protocol, anonymous)].runtime
            ovh = 100 * (t / native_t - 1)
            overheads[(protocol, anonymous)] = ovh
            rows.append([
                protocol,
                "ANY_SOURCE" if anonymous else "deterministic",
                f"{t * 1e3:.3f}",
                f"{ovh:.2f}",
                results[(protocol, anonymous)].stat_total("decisions_sent"),
                results[(protocol, anonymous)].stat_total("hashes_sent"),
            ])
    print()
    print(render_table(
        f"Ablation — redMPI vs SDR under (non-)deterministic receptions ({N_RANKS} ranks)",
        ["protocol", "receptions", "runtime ms", "overhead %", "decisions", "hashes"],
        rows,
    ))
    record(benchmark, **{
        f"{p}_{'any' if a else 'det'}_overhead_pct": round(v, 3)
        for (p, a), v in overheads.items()
    })
    # redMPI: wildcard receptions make it strictly slower (leader agreement
    # on the critical path of every anonymous reception)
    assert overheads[("redmpi", True)] > overheads[("redmpi", False)]
    # SDR: insensitive to the wildcard — the paper's central claim.  (Note
    # SDR's absolute overhead on this communication-dominated kernel is
    # higher than redMPI's: redMPI sends hashes but never *waits* — it
    # tolerates no crashes, so its sends complete locally.)
    assert abs(overheads[("sdr", True)] - overheads[("sdr", False)]) < 2.0


def test_sdc_detection_cost_and_coverage(benchmark):
    """redMPI's raison d'être: hashes catch injected corruption."""

    def run():
        cfg = ReplicationConfig(degree=2, protocol="redmpi")
        job = Job(4, cfg=cfg, cluster=cluster_for(4, 2))
        job.launch(redmpi_fanin, rounds=50, anonymous=False)
        job.protocols[job.rmap.phys(1, 1)].corrupt_next_send(2)
        return job.run()

    res = run_once(benchmark, run)
    detected = res.stat_total("sdc_detected")
    print(f"\ninjected corruptions: 2, detected: {detected}, "
          f"hashes exchanged: {res.stat_total('hashes_sent')}")
    record(benchmark, injected=2, detected=detected, hashes=res.stat_total("hashes_sent"))
    assert detected == 2
