"""Table 1 — NAS Parallel Benchmarks: native vs SDR-MPI (r=2).

Paper (class D, 256 procs): BT 1.49 %, CG 4.92 %, FT 3.04 %, MG 2.56 %,
SP 2.41 % — the headline claim being "overhead remains below 5 %".  The
scale is selected by REPRO_SCALE (default: class C on 64 ranks with capped
iterations; ``paper`` reruns the exact class D / 256-rank configuration).
"""

import pytest

from benchmarks.conftest import record, run_once
from repro.harness.experiments import current_scale, nas_overhead
from repro.harness.report import PAPER_TABLE1, overhead_row, render_table

HEADER = ["app", "native s", "repl s", "ovh %", "paper nat", "paper repl", "paper ovh%"]


@pytest.mark.parametrize("app", ["BT", "CG", "FT", "MG", "SP"])
def test_table1_row(benchmark, app):
    scale = current_scale()
    result = run_once(benchmark, lambda: nas_overhead(app, scale))
    row = overhead_row(app, result["native_s"], result["replicated_s"], PAPER_TABLE1[app])
    print()
    print(render_table(
        f"Table 1 row — {app} ({scale.name}: class {scale.nas_class}, {scale.n_ranks} ranks, r=2)",
        HEADER,
        [row],
    ))
    record(
        benchmark,
        scale=scale.name,
        native_s=result["native_s"],
        replicated_s=result["replicated_s"],
        overhead_pct=result["overhead_pct"],
        paper_overhead_pct=PAPER_TABLE1[app][2],
        acks=result["acks"],
    )
    # the paper's claim: replication overhead stays below 5 % (leave a
    # little margin for the scaled-down configuration)
    assert 0.0 <= result["overhead_pct"] < 6.5
    assert result["acks"] > 0
