"""Engine performance: events/sec trajectory and run-to-run determinism.

Companion to ``tools/bench.py`` — that script records/gates the committed
perf snapshot (``BENCH_engine.json``); this bench keeps the same workloads
visible in the pytest-benchmark suite and enforces two invariants:

* the engine is *deterministic*: repeated runs dispatch exactly the same
  number of events, frames and virtual time;
* throughput has not collapsed relative to the committed snapshot (a loose
  2x floor — the strict 20% gate lives in ``tools/ci.sh`` so that a noisy
  shared CI host does not flake the whole suite).
"""

import json
import os
import sys

import pytest

from benchmarks.conftest import record, run_once

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tools"))

from bench import BENCH_PATH, _workloads  # noqa: E402


def _committed(mode: str, name: str):
    if not os.path.exists(BENCH_PATH):
        return None
    with open(BENCH_PATH) as fh:
        data = json.load(fh)
    return data.get("current", {}).get("modes", {}).get(mode, {}).get(name)


@pytest.mark.parametrize("name", ["leader-anysource", "sdr-anysource"])
def test_engine_throughput(benchmark, name):
    fn = _workloads("quick")[name]
    res1 = fn()

    res2 = run_once(benchmark, fn)
    assert res2.events == res1.events, "non-deterministic event count"
    assert res2.runtime == res1.runtime, "non-deterministic virtual time"
    assert res2.fabric["frames"] == res1.fabric["frames"]

    host_s = benchmark.stats["mean"]
    ev_per_s = res2.events / host_s
    record(
        benchmark,
        events=res2.events,
        events_per_sec=round(ev_per_s, 1),
        virtual_runtime=res2.runtime,
    )
    committed = _committed("quick", name)
    if committed is not None:
        # Catastrophic-regression floor only (see module docstring).
        floor = 0.5 * committed["events_per_sec"]
        assert ev_per_s > floor, (
            f"{name}: {ev_per_s:,.0f} ev/s is below half the committed "
            f"{committed['events_per_sec']:,.0f} ev/s — engine regression?"
        )


def test_speedup_trajectory_recorded():
    """BENCH_engine.json carries the before/after perf trajectory."""
    with open(BENCH_PATH) as fh:
        data = json.load(fh)
    assert "baseline" in data and "current" in data, "bench snapshots missing"
    speedups = data.get("speedup_vs_baseline", {})
    assert speedups, "run tools/bench.py --update after recording a baseline"
    for mode, per_workload in speedups.items():
        for name, speedup in per_workload.items():
            assert speedup >= 1.5, (
                f"{mode}/{name}: committed speedup {speedup}x vs the seed "
                "engine fell below 1.5x — the fast-path work has regressed"
            )
