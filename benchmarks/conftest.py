"""Benchmark-suite helpers.

Every bench regenerates one artefact of the paper's evaluation (or one
ablation of a design claim) at the scale selected by ``REPRO_SCALE``
(quick | paper; default quick).  pytest-benchmark measures the host-side
cost of the simulation; the *scientific* outputs — virtual-time runtimes,
overhead percentages, latency series — are attached to
``benchmark.extra_info`` and printed as paper-style tables.

Rank scaling
------------
The ablation sweeps default to 8–16 logical ranks so the whole suite stays
in the tier-1 budget.  ``REPRO_SCALE=paper`` re-runs them at the paper
testbed's **256 logical ranks** (512 physical processes under degree-2
replication), with iteration counts divided by the same factor so total
event counts stay comparable — the protocol-overhead claims (leader
decision latency, mirror bandwidth, redMPI non-determinism sensitivity)
are then measured at testbed scale, where per-node NIC contention and
collective depth actually bite::

    REPRO_SCALE=paper PYTHONPATH=src python -m pytest benchmarks/ -k ablation

Tests read the knob through :func:`scaled`; the relative assertions they
make (protocol A slower than B, message-count ratios) hold at every scale.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

#: logical-rank target of the paper's testbed (Table 1/2 scale)
PAPER_RANKS = 256

#: REPRO_SCALE=paper lifts the ablation sweeps to 256 logical ranks
SCALE = os.environ.get("REPRO_SCALE", "quick")
PAPER_SCALE = SCALE == "paper"


def scaled(n_ranks: int, **iteration_counts: int) -> Tuple[int, Dict[str, int]]:
    """(ranks, iteration counts) for the active ``REPRO_SCALE``.

    At the default quick scale this is the identity.  At paper scale the
    rank count is multiplied up to :data:`PAPER_RANKS` and every supplied
    iteration count divided by the same factor (floor 1), keeping the
    total message volume — and therefore the suite's wall-clock — in the
    same ballpark while the world grows to testbed size.
    """
    if not PAPER_SCALE:
        return n_ranks, dict(iteration_counts)
    factor = max(1, PAPER_RANKS // n_ranks)
    return (
        n_ranks * factor,
        {name: max(1, count // factor) for name, count in iteration_counts.items()},
    )


def record(benchmark, **info) -> None:
    """Attach scientific outputs to the benchmark record."""
    for key, value in info.items():
        benchmark.extra_info[key] = value


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
