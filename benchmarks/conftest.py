"""Benchmark-suite helpers.

Every bench regenerates one artefact of the paper's evaluation (or one
ablation of a design claim) at the scale selected by ``REPRO_SCALE``
(quick | small | paper; default quick).  pytest-benchmark measures the
host-side cost of the simulation; the *scientific* outputs — virtual-time
runtimes, overhead percentages, latency series — are attached to
``benchmark.extra_info`` and printed as paper-style tables.
"""

from __future__ import annotations



def record(benchmark, **info) -> None:
    """Attach scientific outputs to the benchmark record."""
    for key, value in info.items():
        benchmark.extra_info[key] = value


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
