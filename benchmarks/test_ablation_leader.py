"""Ablation — leader-based agreement vs send-determinism (§2.4, §3.1).

The paper's Fig. 2 argument: a leader-based protocol puts a
leader→follower decision message on the critical path of every anonymous
reception and makes followers post their receives late (unexpected-queue
pressure, i.e. extra copies).  rMPI/redMPI reported up to 20 %/29 %
overhead on such codes; SDR-MPI resolves the wildcard locally.

Workload: a communication-dominated ANY_SOURCE fan-in/fan-out loop (light
compute so the protocol latency is visible, unlike Table 2's
compute-dominated apps where noise amplification dominates both equally).
"""

from benchmarks.conftest import record, run_once, scaled
from repro.core.config import ReplicationConfig
from repro.harness.report import render_table
from repro.harness.runner import Job, cluster_for
from repro.scenarios import anysource_fanin

#: rank-scale knob: 8 ranks by default, 256 under REPRO_SCALE=paper
#: (rounds shrink by the same factor — see benchmarks/conftest.py)
N_RANKS, _COUNTS = scaled(8, rounds=200)
ROUNDS = _COUNTS["rounds"]


def _run(protocol, n=None, rounds=None):
    n = N_RANKS if n is None else n
    rounds = ROUNDS if rounds is None else rounds
    if protocol == "native":
        cfg = ReplicationConfig(degree=1, protocol="native")
    else:
        cfg = ReplicationConfig(degree=2, protocol=protocol)
    job = Job(n, cfg=cfg, cluster=cluster_for(n, cfg.degree))
    res = job.launch(anysource_fanin, rounds=rounds).run()
    return res


def test_leader_vs_sdr_on_anysource(benchmark):
    results = {}

    def run_all():
        for protocol in ("native", "sdr", "leader"):
            results[protocol] = _run(protocol)
        return results

    run_once(benchmark, run_all)
    native_t = results["native"].runtime
    rows = []
    for protocol in ("native", "sdr", "leader"):
        res = results[protocol]
        rows.append([
            protocol,
            f"{res.runtime * 1e3:.3f}",
            f"{100 * (res.runtime / native_t - 1):.2f}",
            res.stat_total("unexpected_count"),
            res.stat_total("decisions_sent"),
        ])
    print()
    print(render_table(
        f"Ablation — ANY_SOURCE fan-in under each protocol ({N_RANKS} ranks, r=2)",
        ["protocol", "runtime ms", "overhead %", "unexpected", "decisions"],
        rows,
    ))
    sdr, leader = results["sdr"], results["leader"]
    record(
        benchmark,
        sdr_overhead_pct=100 * (sdr.runtime / native_t - 1),
        leader_overhead_pct=100 * (leader.runtime / native_t - 1),
        sdr_unexpected=sdr.stat_total("unexpected_count"),
        leader_unexpected=leader.stat_total("unexpected_count"),
        leader_decisions=leader.stat_total("decisions_sent"),
    )
    # the paper's claims, as inequalities:
    assert leader.runtime > sdr.runtime  # decision latency on the critical path
    assert leader.stat_total("decisions_sent") > 0
    assert sdr.stat_total("decisions_sent") == 0  # no leader traffic at all


def test_unexpected_messages(benchmark):
    """§3.1: followers post late -> more unexpected messages (extra copies)."""
    results = {}

    def run_all():
        half = max(1, ROUNDS // 2)
        results["sdr"] = _run("sdr", rounds=half)
        results["leader"] = _run("leader", rounds=half)
        return results

    run_once(benchmark, run_all)
    sdr_unexp = results["sdr"].stat_total("unexpected_count")
    leader_unexp = results["leader"].stat_total("unexpected_count")
    print(f"\nunexpected messages: sdr={sdr_unexp} leader={leader_unexp}")
    record(benchmark, sdr_unexpected=sdr_unexp, leader_unexpected=leader_unexp)
    assert leader_unexp > sdr_unexp
