"""Fig. 7 — NetPipe latency (7a) and throughput (7b) on InfiniBand-20G.

Paper anchors: native 1-byte latency 1.67 µs, SDR-MPI 2.37 µs; overhead
noticeable (>25 %) only below ~100 B; throughput unaffected for large
messages (peak ≈ 20 Gbps).
"""

import pytest

from benchmarks.conftest import record, run_once
from repro.apps.netpipe import DEFAULT_SIZES, netpipe_sweep
from repro.harness.report import PAPER_FIG7_POINTS, render_series


@pytest.fixture(scope="module")
def sweeps():
    return {
        "native": netpipe_sweep("native", sizes=DEFAULT_SIZES, iters=10),
        "sdr": netpipe_sweep("sdr", sizes=DEFAULT_SIZES, iters=10),
    }


def test_fig7a_latency(benchmark, sweeps):
    def run():
        return netpipe_sweep("sdr", sizes=(1, 1024, 65536), iters=10)

    run_once(benchmark, run)
    native, sdr = sweeps["native"], sweeps["sdr"]
    lat_native = {s: native[s]["latency_s"] * 1e6 for s in DEFAULT_SIZES}
    lat_sdr = {s: sdr[s]["latency_s"] * 1e6 for s in DEFAULT_SIZES}
    decrease = {s: 100 * (lat_sdr[s] / lat_native[s] - 1) for s in DEFAULT_SIZES}
    print()
    print(render_series(
        "Fig. 7a — latency (us) vs message size",
        "bytes",
        {"native": lat_native, "sdr-mpi": lat_sdr, "decrease%": decrease},
    ))
    print(f"paper anchors: native 1B {PAPER_FIG7_POINTS['native_1B_us']} us, "
          f"sdr 1B {PAPER_FIG7_POINTS['sdr_1B_us']} us")
    record(
        benchmark,
        native_1B_us=lat_native[1],
        sdr_1B_us=lat_sdr[1],
        paper_native_1B_us=PAPER_FIG7_POINTS["native_1B_us"],
        paper_sdr_1B_us=PAPER_FIG7_POINTS["sdr_1B_us"],
        decrease_pct_by_size={str(k): round(v, 2) for k, v in decrease.items()},
    )
    # shape assertions: anchors within 5 %, decay with size, small tail
    assert lat_native[1] == pytest.approx(1.67, rel=0.05)
    assert lat_sdr[1] == pytest.approx(2.37, rel=0.05)
    assert decrease[1] > 25.0
    assert decrease[8 * 2**20] < 1.0
    assert all(decrease[a] >= decrease[b] - 1e-6 for a, b in zip(DEFAULT_SIZES, DEFAULT_SIZES[1:]))


def test_fig7b_throughput(benchmark, sweeps):
    def run():
        return netpipe_sweep("sdr", sizes=(65536, 8 * 2**20), iters=10)

    run_once(benchmark, run)
    native, sdr = sweeps["native"], sweeps["sdr"]
    tp_native = {s: native[s]["throughput_mbps"] for s in DEFAULT_SIZES}
    tp_sdr = {s: sdr[s]["throughput_mbps"] for s in DEFAULT_SIZES}
    decrease = {s: 100 * (1 - tp_sdr[s] / tp_native[s]) for s in DEFAULT_SIZES}
    print()
    print(render_series(
        "Fig. 7b — throughput (Mbps) vs message size",
        "bytes",
        {"native": tp_native, "sdr-mpi": tp_sdr, "decrease%": decrease},
        fmt="{:.4g}",
    ))
    record(
        benchmark,
        peak_native_mbps=max(tp_native.values()),
        peak_sdr_mbps=max(tp_sdr.values()),
        decrease_pct_by_size={str(k): round(v, 2) for k, v in decrease.items()},
    )
    # peak throughput near the 20 Gbps line, unaffected by replication
    assert max(tp_native.values()) == pytest.approx(20_000, rel=0.05)
    assert decrease[8 * 2**20] < 0.5
    assert decrease[1] > 25.0  # small messages lose throughput like latency
