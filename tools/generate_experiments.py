#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md: run every experiment at the current scale and
record paper-vs-measured for each table and figure.

Usage:  python tools/generate_experiments.py [output-path]
        REPRO_SCALE=paper python tools/generate_experiments.py   # full scale
"""

from __future__ import annotations

import sys
import time

from repro.apps.netpipe import DEFAULT_SIZES, netpipe_sweep
from repro.harness.experiments import app_overhead, current_scale, nas_overhead
from repro.harness.report import PAPER_FIG7_POINTS, PAPER_TABLE1, PAPER_TABLE2


def main(path: str = "EXPERIMENTS.md") -> None:
    scale = current_scale()
    t0 = time.time()
    lines: list[str] = []
    w = lines.append

    w("# EXPERIMENTS — paper vs measured")
    w("")
    w("Reproduction of every table and figure in the evaluation of")
    w('*"Replication for Send-Deterministic MPI HPC Applications"* (FTXS/HPDC 2013).')
    w("")
    w(f"Scale used for this file: **{scale.name}** "
      f"({scale.n_ranks} ranks, NAS class {scale.nas_class}, "
      f"iteration cap {scale.nas_iter_cap}, OS-noise sigma {scale.noise}).")
    w("Regenerate with `python tools/generate_experiments.py`; "
      "set `REPRO_SCALE=paper` for the class D / 256-rank configuration.")
    w("")
    w("All measured numbers are **virtual (simulated) time** on the calibrated")
    w("InfiniBand-20G cluster model; 'paper' columns are the published values.")
    w("Absolute native runtimes at non-paper scales differ by construction —")
    w("the reproduction target is the *shape*: who wins, by what factor,")
    w("where the crossovers fall.")
    w("")

    # ---------------------------------------------------------------- fig 7
    w("## Fig. 7a/7b — NetPipe latency and throughput (native vs SDR-MPI)")
    w("")
    native = netpipe_sweep("native", sizes=DEFAULT_SIZES, iters=10)
    sdr = netpipe_sweep("sdr", sizes=DEFAULT_SIZES, iters=10)
    w("| bytes | latency native (µs) | latency SDR (µs) | decrease % | tput native (Mbps) | tput SDR (Mbps) |")
    w("|---:|---:|---:|---:|---:|---:|")
    for s in DEFAULT_SIZES:
        ln, ls = native[s]["latency_s"] * 1e6, sdr[s]["latency_s"] * 1e6
        w(f"| {s} | {ln:.2f} | {ls:.2f} | {100*(ls/ln-1):.1f} | "
          f"{native[s]['throughput_mbps']:.0f} | {sdr[s]['throughput_mbps']:.0f} |")
    w("")
    w(f"Paper anchors: native 1 B = {PAPER_FIG7_POINTS['native_1B_us']} µs, "
      f"SDR-MPI 1 B = {PAPER_FIG7_POINTS['sdr_1B_us']} µs "
      f"(measured: {native[1]['latency_s']*1e6:.2f} / {sdr[1]['latency_s']*1e6:.2f}).")
    w("Shape check: overhead >25 % only below ~1 KiB, decaying monotonically to ~0 at")
    w("megabyte sizes; peak throughput ≈ 20 Gbps unaffected by replication. **Reproduced.**")
    w("")

    # --------------------------------------------------------------- table 1
    w(f"## Table 1 — NAS benchmarks, native vs SDR-MPI (r=2), scale={scale.name}")
    w("")
    w("| app | native (s) | replicated (s) | overhead % | paper native | paper repl | paper ovh % |")
    w("|---|---:|---:|---:|---:|---:|---:|")
    for app in ("BT", "CG", "FT", "MG", "SP"):
        r = nas_overhead(app, scale)
        p = PAPER_TABLE1[app]
        w(f"| {app} | {r['native_s']:.2f} | {r['replicated_s']:.2f} | "
          f"{r['overhead_pct']:.2f} | {p[0]:.2f} | {p[1]:.2f} | {p[2]:.2f} |")
        print(f"table1 {app} done ({time.time()-t0:.0f}s)", file=sys.stderr)
    w("")
    w("Shape check (paper: all overheads below 5 %, BT lowest, CG highest):")
    w("every measured overhead is positive and below 5 %, same order of magnitude")
    w("as the paper's 1.5–4.9 % band. **Reproduced** (headline claim: <5 %).")
    w("Note: the per-app ordering is only approximately reproduced — overheads at")
    w("this scale are dominated by replica-coupled OS-noise amplification, whose")
    w("per-app differences are weaker than on the real 256-rank testbed.")
    w("")

    # --------------------------------------------------------------- table 2
    w(f"## Table 2 — HPCCG and CM1 (ANY_SOURCE applications), scale={scale.name}")
    w("")
    w("| app | native (s) | replicated (s) | overhead % | unexpected msgs | paper ovh % |")
    w("|---|---:|---:|---:|---:|---:|")
    for app in ("HPCCG", "CM1"):
        r = app_overhead(app, scale)
        w(f"| {app} | {r['native_s']:.2f} | {r['replicated_s']:.2f} | "
          f"{r['overhead_pct']:.2f} | {r['unexpected']} | {PAPER_TABLE2[app][2]:.3f} |")
        print(f"table2 {app} done ({time.time()-t0:.0f}s)", file=sys.stderr)
    w("")
    w("Shape check: anonymous receptions cost SDR-MPI nothing extra — both apps sit")
    w("in the same <5 % band as the deterministic NAS codes (paper: 0.002 % / 3.14 %).")
    w("**Reproduced.**  (The paper's near-zero HPCCG number is below what the noise")
    w("model resolves; the claim that matters — no wildcard penalty — holds, see the")
    w("leader ablation below.)")
    w("")

    # -------------------------------------------------------------- ablations
    w("## Ablations (claims from §2.4/§3.1 made measurable)")
    w("")
    w("Run `pytest benchmarks/ --benchmark-only` for the full set; summary of what")
    w("each shows on this machine:")
    w("")
    w("- **abl-leader** (`benchmarks/test_ablation_leader.py`): on an ANY_SOURCE")
    w("  fan-in, the rMPI-style leader protocol is strictly slower than SDR-MPI and")
    w("  floods the followers' unexpected queues (paper §3.1, Fig. 2); SDR sends")
    w("  zero decision messages.")
    w("- **abl-mirror** (`benchmarks/test_ablation_mirror.py`): the MR-MPI-style")
    w("  mirror protocol sends exactly r× more application messages (O(q·r²) vs")
    w("  O(q·r)) and ~2× the bytes; on a bandwidth-bound exchange the duplicated")
    w("  traffic through the shared NICs costs an order of magnitude in runtime,")
    w("  the mechanism behind MR-MPI's published up-to-160 % overheads.")
    w("- **abl-redmpi** (`benchmarks/test_ablation_redmpi.py`): redMPI's overhead")
    w("  grows when receptions are anonymous (leader agreement on the critical")
    w("  path) while SDR-MPI's is insensitive; injected silent corruptions are")
    w("  detected exactly once each via the cross-replica hashes.")
    w("- **fault-fig3 / fault-fig4** (`benchmarks/test_fault_recovery.py`): a")
    w("  mid-run replica crash is absorbed (substitute resends, application result")
    w("  bit-identical to the failure-free run); a subsequent §3.4 respawn rejoins")
    w("  and finishes with the same result.  (The paper deferred fault measurements")
    w("  to future work; these implement it.)")
    w("")
    w("## Send-determinism (Definition 1, §2.1)")
    w("")
    w("`sdr-mpi determinism --app <name>`: all five NAS kernels, HPCCG and CM1 pass")
    w("the perturbed-replay check (identical per-process send sequences under")
    w("jittered message timing); the master-worker pattern is correctly flagged as")
    w("NOT send-deterministic — matching the classification in Cappello et al. [5].")
    w("")
    w(f"_Generated in {time.time()-t0:.0f} s of host time._")
    w("")

    with open(path, "w") as fh:
        fh.write("\n".join(lines))
    print(f"wrote {path}", file=sys.stderr)


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md")
