#!/usr/bin/env python
"""Engine benchmark: events/sec and wall-clock on the ablation workloads.

Measures the *host-side* cost of the simulation engine (the pure-Python
event loop, matching, PML, fabric) on deterministic workloads shaped like
the paper's ablations.  Scientific outputs (virtual runtimes) are invariant
under engine optimisation — this harness tracks the perf trajectory and
gates regressions.

Usage::

    PYTHONPATH=src python tools/bench.py              # run, print table
    PYTHONPATH=src python tools/bench.py --quick      # smaller rounds (CI smoke)
    PYTHONPATH=src python tools/bench.py --paper      # 256-rank paper-scale smoke
    PYTHONPATH=src python tools/bench.py --scale      # 1024-rank nightly smoke
    PYTHONPATH=src python tools/bench.py --scale4k    # 4096-rank nightly smoke
    PYTHONPATH=src python tools/bench.py --scale8k    # 8192-rank nightly smoke
    PYTHONPATH=src python tools/bench.py --scale16k   # 16384-rank nightly smoke
    PYTHONPATH=src python tools/bench.py --scale64k   # 65536-rank stretch tier (manual)
    PYTHONPATH=src python tools/bench.py --floor      # machinery-floor microbench
    PYTHONPATH=src python tools/bench.py --workers 4  # add sharded-parallel A/B rows
    PYTHONPATH=src python tools/bench.py --update     # rewrite BENCH_engine.json
    PYTHONPATH=src python tools/bench.py --check      # fail on >20% events/s regression
                                                      # (warn >15% peak-memory growth)
    PYTHONPATH=src python tools/bench.py --baseline LABEL  # record as 'baseline'

``BENCH_engine.json`` (repo root) holds two snapshots: ``baseline`` (the
pre-refactor seed engine) and ``current`` (the engine as committed).
``--check`` compares a fresh run against ``current`` and fails — with a
per-workload delta table — when any workload's events/sec drops below
``(1 - tolerance)`` of the committed number, so future PRs regress against
a measured trajectory, not vibes.  Host speed varies across machines; the
committed numbers are refreshed with ``--update`` whenever the engine
intentionally changes.

Modes: ``full`` (default) and ``quick`` run the four ablation-shaped
workloads at 16 ranks; ``paper`` runs a 256-logical-rank SDR collectives
smoke (512 physical processes under degree-2 replication) — the scale the
paper's testbed measured — to keep collective/large-world costs on the
per-PR gate, not just per-release sweeps; ``scale`` runs the same shape at
**1024 logical ranks** (2048 physical processes, ~4.5x the paper tier's
event count), ``scale4k`` at **4096 logical ranks** (8192 processes,
~1M events — affordable at all only since the two-level event queue) and
``scale8k`` at **8192 logical ranks** (16384 processes, ~2.3M events —
affordable only since the flyweight footprint pass), ``scale16k`` at
**16384 logical ranks** (32768 processes, ~5M events — affordable only
since the run-time working-set pass: SoA match lanes, payload interning,
high-water-trimmed arenas) — all too heavy per-PR, so the scheduled
nightly job in ``.github/workflows/ci.yml`` owns them.  ``scale64k``
(65536 logical ranks, 131072 processes, ~23M events) is the stretch
tier: runnable and recorded in the snapshot, but owned by the *weekly*
scheduled CI shard (sharded-parallel by default, serial ``--repeats 1``
fallback behind a workflow input) because its wall time does not fit the
nightly budget.  ``floor`` runs the machinery-floor microbenchmark from
docs/performance.md — processes yielding CPU charges through a 4-deep
generator chain, i.e. dispatch + generator resume with zero protocol
work — so the snapshot pins the engine's per-event lower bound
explicitly rather than leaving it a prose number.

``--workers N`` (any Job-based mode) measures each workload twice —
serial, then sharded across N fork workers — and records the parallel
run as a ``<name>@wN`` row carrying ``speedup_vs_serial``,
``events_per_sec_per_core`` and the execution shape (shards, windows,
fallback reasons).  Because sharded execution is byte-identical to
serial, the A/B doubles as an equivalence assertion: events, frames and
virtual runtime must match the serial row exactly.  ``--check`` treats
``@wN`` rows *advisorily* (speedup is host-dependent; a slow row warns,
never fails).

Every workload runs **once untimed** before the timed repeats: the first
execution pays one-off lazy costs (per-channel pricing state, cost-model
and matching-lane builds, frame/envelope arena warm-up, numpy import
paths) that otherwise double-count into the first repeat's
``host_seconds``; the warmup run also supplies the reference event/frame
counts the determinism assertion checks every timed repeat against.

Memory columns: the untimed warmup runs under ``tracemalloc`` (never the
timed repeats — instrumentation costs 2-4x wall time), recording the
Python-heap peak (``mem_traced_peak_mb``), the same divided by simulated
process count (``mem_bytes_per_proc`` — the footprint number the
flyweight work targets), and the OS-level peak RSS at measurement time
(``mem_rss_peak_mb``; note this is a *process high-water* mark, so in
multi-workload modes later workloads inherit the peak of earlier ones —
compare it per tier, not per workload).  ``--check`` gates memory
*advisorily*: a >15% growth of the traced peak over the committed
snapshot prints a WARNING but never fails the gate (host-dependent
allocator behaviour should not block PRs; sustained growth shows up in
the nightly logs) and prints a per-workload memory delta table (traced
peak + bytes/proc, signed deltas, verdict) mirroring the events/sec gate
table, so the working-set trajectory is greppable from CI logs.

High-water columns: the warmup result also reports the arena high-water
marks the trim policy sizes against — ``env_high_water`` summed over
every PML and the fabric's ``frame_high_water`` — so a tier's snapshot
records how deep the arenas actually ran, not just how much heap the
run touched.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
import time
import tracemalloc
from typing import Any, Callable, Dict

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.core.config import ReplicationConfig  # noqa: E402
from repro.harness.report import parallel_rows, render_table  # noqa: E402
from repro.harness.runner import Job, cluster_for  # noqa: E402
from repro.scenarios import anysource_fanin, ring_collectives  # noqa: E402

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
#: snapshot location; BENCH_ENGINE_PATH overrides it so CI can gate a PR
#: against a reference measured on the *same host* (see ci.yml) instead of
#: the committed numbers from whatever machine last ran --update
BENCH_PATH = os.environ.get("BENCH_ENGINE_PATH") or os.path.join(ROOT, "BENCH_engine.json")

#: events/sec regression tolerance for --check (fraction of committed value)
TOLERANCE = 0.20
#: peak-memory growth tolerance for --check (advisory: warn, never fail)
MEM_TOLERANCE = 0.15


# Workloads come from the scenario registry (repro.scenarios) — the same
# anysource_fanin / ring_collectives every ablation driver and sweep runs.
def _run_job(protocol: str, app: Callable, n_ranks: int, workers: int = 0, **kwargs):
    if protocol == "native":
        cfg = ReplicationConfig(degree=1, protocol="native")
    else:
        cfg = ReplicationConfig(degree=2, protocol=protocol)
    parallel = None
    if workers:
        from repro.sim.shard import ParallelConfig

        parallel = ParallelConfig(workers=workers)
    job = Job(n_ranks, cfg=cfg, cluster=cluster_for(n_ranks, cfg.degree), parallel=parallel)
    return job.launch(app, **kwargs).run()


class _FloorResult:
    """Duck-typed ``JobResult`` for the machinery-floor microbenchmark."""

    def __init__(self, events: int, runtime: float, n_procs: int) -> None:
        self.events = events
        self.runtime = runtime
        self.fabric = {"frames": 0, "frame_high_water": 0}
        self.stats = {p: {} for p in range(n_procs)}
        self.payload_interned = 0

    def stat_total(self, key: str) -> int:
        return 0


def _machinery_floor(n_procs: int = 64, charges: int = 4000) -> _FloorResult:
    """Dispatch + resume alone: the engine's measured machinery floor.

    Processes yield bare CPU charges through a 4-deep generator chain —
    no frames, no matching, no protocol semantics — so the per-event cost
    is the kernel's dispatch loop plus generator resume and nothing else
    (docs/performance.md, "machinery floor", ≈ 1.4 µs/event on the
    reference host).  Per-proc charge periods are staggered so timestamps
    do not all collapse into one batch; the remaining gap between this
    number and the ablation workloads is MPI/protocol semantics the
    determinism contract refuses to elide.
    """
    from repro.sim.kernel import Simulator
    from repro.sim.process import Process

    sim = Simulator()

    def leaf(n: int, period: float):
        for _ in range(n):
            yield period

    def tier2(n: int, period: float):
        yield from leaf(n, period)

    def tier3(n: int, period: float):
        yield from tier2(n, period)

    def chain(n: int, period: float):
        yield from tier3(n, period)

    for p in range(n_procs):
        Process(sim, chain(charges, (97 + 13 * (p % 11)) * 1e-9), name=f"floor{p}")
    sim.run()
    return _FloorResult(sim.events_dispatched, sim.now, n_procs)


def _workloads(mode: str, workers: int = 0) -> Dict[str, Callable[[], Any]]:
    if mode == "floor":
        # The machinery-floor microbenchmark as a first-class tier: its
        # events/sec snapshot pins the dispatch+resume budget every other
        # tier's per-event cost is judged against.
        return {"machinery-floor": lambda: _machinery_floor()}
    if mode == "scale64k":
        # Stretch tier: 65536 logical ranks / 131072 simulated processes,
        # ~23M events.  Runnable since the working-set pass keeps
        # bytes/proc flat, but its wall time (~tens of minutes with the
        # tracemalloc warmup) does not fit the nightly budget — run
        # manually with --repeats 1 and record via --update.
        return {
            "sdr-collectives-65536": lambda: _run_job(
                "sdr", ring_collectives, n_ranks=65536, iters=1, nbytes=4096, workers=workers
            ),
        }
    if mode == "scale16k":
        # 16384 logical ranks / 32768 simulated processes, ~5M events —
        # the tier the run-time working-set pass (SoA match lanes, payload
        # interning, high-water-trimmed arenas) made affordable: before
        # it, per-PML match-lane deques alone held ~15 KB/proc at steady
        # state.  Nightly-only.
        return {
            "sdr-collectives-16384": lambda: _run_job(
                "sdr", ring_collectives, n_ranks=16384, iters=1, nbytes=4096, workers=workers
            ),
        }
    if mode == "scale8k":
        # 8192 logical ranks / 16384 simulated processes, ~2.3M events —
        # the tier the flyweight footprint pass (shared cost tables, slim
        # PML/protocol state, shared world communicator) made affordable:
        # the seed-shaped per-proc construction alone would hold multiple
        # GB of identical state at this scale.  Nightly-only.
        return {
            "sdr-collectives-8192": lambda: _run_job(
                "sdr", ring_collectives, n_ranks=8192, iters=1, nbytes=4096, workers=workers
            ),
        }
    if mode == "scale4k":
        # The 4096-logical-rank (8192-process) tier the ROADMAP called
        # unaffordable before the queue machinery changed: one collective
        # ring iteration is 13 recursive-doubling rounds across the whole
        # world, ~1M events.  Nightly-only, alongside --scale.
        return {
            "sdr-collectives-4096": lambda: _run_job(
                "sdr", ring_collectives, n_ranks=4096, iters=1, nbytes=4096, workers=workers
            ),
        }
    if mode == "scale":
        # Nightly-scale smoke: 1024 logical ranks / 2048 physical
        # processes under degree-2 SDR — one collective ring iteration is
        # 11 recursive-doubling rounds across the whole world, ~4.5x the
        # event count of the paper tier (heap depth grows log-linearly).
        # Too heavy to gate per-PR; the nightly workflow runs it so scale
        # regressions surface within a day instead of at release time.
        return {
            "sdr-collectives-1024": lambda: _run_job(
                "sdr", ring_collectives, n_ranks=1024, iters=2, nbytes=4096, workers=workers
            ),
        }
    if mode == "paper":
        # Paper-scale smoke: 256 logical ranks (the testbed's scale), 512
        # physical processes under degree-2 SDR.  Collectives dominate —
        # each allreduce is 8 recursive-doubling rounds across the whole
        # world — which is exactly the traffic the replication protocols
        # stress hardest.  Kept to a few iterations so the gate stays
        # affordable per-PR.
        return {
            "sdr-collectives-256": lambda: _run_job(
                "sdr", ring_collectives, n_ranks=256, iters=2, nbytes=4096, workers=workers
            ),
        }
    quick = mode == "quick"
    rounds = 30 if quick else 100
    iters = 15 if quick else 40
    return {
        # The tentpole target: leader-based replication inflates the
        # unexpected queue (§3.1) — historically quadratic in the linear
        # matching engine.
        "leader-anysource": lambda: _run_job(
            "leader", anysource_fanin, n_ranks=16, rounds=rounds, workers=workers
        ),
        "sdr-anysource": lambda: _run_job(
            "sdr", anysource_fanin, n_ranks=16, rounds=rounds, workers=workers
        ),
        "native-anysource": lambda: _run_job(
            "native", anysource_fanin, n_ranks=16, rounds=rounds, workers=workers
        ),
        "sdr-collectives": lambda: _run_job(
            "sdr", ring_collectives, n_ranks=16, iters=iters, workers=workers
        ),
    }


# --------------------------------------------------------------- measuring
def _rss_peak_mb() -> float:
    """OS-level peak RSS (process high-water mark) in MB."""
    # ru_maxrss is KB on Linux, bytes on macOS.
    maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    scale = 1024.0 if sys.platform != "darwin" else 1.0
    return round(maxrss * scale / 1e6, 2)


def measure(fn: Callable[[], Any], repeats: int = 3) -> Dict[str, Any]:
    """Best-of-*repeats* host time; asserts run-to-run determinism.

    The first call is an **untimed warmup**: lazy one-off work (pricing
    state, matching lanes, object arenas, import side effects) would
    otherwise double-count into the first repeat's ``host_seconds`` and —
    with small repeat counts — survive the best-of filter.  The warmup's
    event/frame counts and virtual runtime become the reference every
    timed repeat must reproduce exactly.

    The warmup also doubles as the **memory probe**: it runs under
    ``tracemalloc`` (2-4x slower — which is why the timed repeats never
    do), capturing the Python-heap peak and the per-simulated-process
    footprint next to the events/sec columns.
    """
    tracemalloc.start()
    warm = fn()
    _cur, traced_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    events, frames, runtime = warm.events, warm.fabric["frames"], warm.runtime
    n_procs = len(warm.stats)
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        res = fn()
        dt = time.perf_counter() - t0
        assert res.events == events, "non-deterministic event count!"
        assert res.fabric["frames"] == frames, "non-deterministic frame count!"
        assert res.runtime == runtime, "non-deterministic virtual runtime!"
        if best is None or dt < best:
            best = dt
    row = {
        "host_seconds": round(best, 6),
        "events": events,
        "events_per_sec": round(events / best, 1),
        "virtual_runtime": runtime,
        "total_frames": frames,
        "n_procs": n_procs,
        "mem_traced_peak_mb": round(traced_peak / 1e6, 2),
        "mem_bytes_per_proc": round(traced_peak / n_procs) if n_procs else 0,
        "mem_rss_peak_mb": _rss_peak_mb(),
        # Arena high-water marks from the warmup run: what the trim policy
        # sizes the free lists against (docs/performance.md).
        "env_high_water": int(warm.stat_total("env_high_water")),
        "frame_high_water": int(warm.fabric.get("frame_high_water", 0)),
        "payload_interned": int(warm.payload_interned),
    }
    meta = getattr(warm, "parallel", None)
    if meta is not None:
        # Sharded run: record the execution shape next to the timing so the
        # snapshot says *how* the number was produced (shard count, window
        # count, any recorded serial-fallback reasons).  Note the memory
        # columns for parallel rows see only the parent process — the
        # per-shard working sets live in the fork workers.
        row["parallel"] = {
            "workers": meta.get("workers"),
            "shards": meta.get("shards"),
            "windows": meta.get("windows"),
            "fallback": list(meta.get("fallback") or ()),
            # Interpretation key for the speedup column: fork workers can
            # only beat serial when the host actually grants them cores.
            # On a 1-core host the @wN row measures the pure sharding tax
            # (window sync + relay pickling), not parallel speedup.
            "host_cores": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else (os.cpu_count() or 1),
        }
    return row


def run_suite(mode: str, repeats: int = 3, workers: int = 0) -> Dict[str, Dict[str, Any]]:
    out: Dict[str, Dict[str, Any]] = {}
    par = _workloads(mode, workers=workers) if workers and mode != "floor" else {}
    for name, fn in _workloads(mode).items():
        out[name] = measure(fn, repeats=repeats)
        print(
            f"  {name:<20s} {out[name]['events_per_sec']:>12,.0f} ev/s   "
            f"{out[name]['host_seconds'] * 1e3:>8.1f} ms   "
            f"{out[name]['events']:>9,d} events   "
            f"{out[name]['mem_traced_peak_mb']:>7.1f} MB peak   "
            f"{out[name]['mem_bytes_per_proc']:>7,d} B/proc   "
            f"hw e/f {out[name]['env_high_water']:,d}/{out[name]['frame_high_water']:,d}"
        )
        pfn = par.get(name)
        if pfn is None:
            continue
        # Serial-vs-parallel A/B on the identical workload.  The byte-
        # identical contract makes this an *equivalence check as well as a
        # timing*: events, frames and virtual runtime must match the
        # serial row exactly or the sharded engine is wrong, not slow.
        pname = f"{name}@w{workers}"
        prow = measure(pfn, repeats=repeats)
        for key in ("events", "total_frames", "virtual_runtime"):
            assert prow[key] == out[name][key], (
                f"{pname}: parallel run diverged from serial on {key}: "
                f"{prow[key]!r} != {out[name][key]!r}"
            )
        meta = prow.get("parallel") or {}
        shards = meta.get("shards") or 1
        prow["workers"] = workers
        prow["speedup_vs_serial"] = round(
            prow["events_per_sec"] / out[name]["events_per_sec"], 2
        )
        prow["events_per_sec_per_core"] = round(prow["events_per_sec"] / shards, 1)
        out[pname] = prow
        fb = meta.get("fallback") or []
        shape = (
            f"{shards} shards / {meta.get('windows', 0)} windows"
            if not fb
            else "serial fallback: " + "; ".join(fb)
        )
        print(
            f"  {pname:<20s} {prow['events_per_sec']:>12,.0f} ev/s   "
            f"{prow['speedup_vs_serial']:>5.2f}x vs serial   "
            f"{prow['events_per_sec_per_core']:>10,.0f} ev/s/core   [{shape}]"
        )
    p_header, p_rows = parallel_rows(list(out.items()))
    if p_rows:
        print()
        print(render_table("sharded execution", p_header, p_rows))
    return out


def load_record() -> Dict[str, Any]:
    if os.path.exists(BENCH_PATH):
        with open(BENCH_PATH) as fh:
            return json.load(fh)
    return {"schema": 1}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--quick", action="store_true", help="smaller rounds (CI smoke)")
    ap.add_argument("--paper", action="store_true", help="256-rank paper-scale smoke")
    ap.add_argument("--scale", action="store_true", help="1024-rank nightly-scale smoke")
    ap.add_argument("--scale4k", action="store_true", help="4096-rank nightly-scale smoke")
    ap.add_argument("--scale8k", action="store_true", help="8192-rank nightly-scale smoke")
    ap.add_argument("--scale16k", action="store_true", help="16384-rank nightly-scale smoke")
    ap.add_argument(
        "--scale64k", action="store_true", help="65536-rank stretch tier (manual; use --repeats 1)"
    )
    ap.add_argument(
        "--floor", action="store_true", help="machinery-floor microbench (dispatch+resume only)"
    )
    ap.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="also measure each workload sharded across N fork workers "
        "(adds '<name>@wN' rows with speedup and ev/s/core; advisory in --check)",
    )
    ap.add_argument("--check", action="store_true", help="fail on >20%% ev/s regression")
    ap.add_argument("--update", action="store_true", help="rewrite the 'current' snapshot")
    ap.add_argument("--baseline", metavar="LABEL", help="record this run as 'baseline'")
    ap.add_argument("--repeats", type=int, default=3)
    args = ap.parse_args(argv)

    exclusive = [
        flag
        for flag in (
            "quick",
            "paper",
            "scale",
            "scale4k",
            "scale8k",
            "scale16k",
            "scale64k",
            "floor",
        )
        if getattr(args, flag)
    ]
    if len(exclusive) > 1:
        ap.error("--" + " and --".join(exclusive) + " are mutually exclusive")
    mode = exclusive[0] if exclusive else "full"
    if args.workers and mode == "floor":
        ap.error("--workers does not apply to --floor (no Job, nothing to shard)")
    if args.workers < 0:
        ap.error("--workers must be >= 0")
    tag = f", workers={args.workers}" if args.workers else ""
    print(f"engine bench ({mode}, best of {args.repeats}, 1 warmup{tag}):")
    results = run_suite(mode, repeats=args.repeats, workers=args.workers)

    record = load_record()
    if args.baseline:
        snap = record.setdefault("baseline", {"label": args.baseline, "modes": {}})
        snap["label"] = args.baseline
        snap.setdefault("modes", {})[mode] = results
        with open(BENCH_PATH, "w") as fh:
            json.dump(record, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"baseline ({mode}) recorded -> {BENCH_PATH}")
        return 0

    if args.update:
        snap = record.setdefault("current", {"label": "committed engine", "modes": {}})
        snap.setdefault("modes", {})[mode] = results
        base = record.get("baseline", {}).get("modes", {}).get(mode, {})
        if base:
            record.setdefault("speedup_vs_baseline", {})[mode] = {
                name: round(results[name]["events_per_sec"] / base[name]["events_per_sec"], 2)
                for name in results
                if name in base
            }
        with open(BENCH_PATH, "w") as fh:
            json.dump(record, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"current snapshot ({mode}) updated -> {BENCH_PATH}")
        return 0

    if args.check:
        # A brand-new tier has no snapshot to gate against: fail loudly
        # with the fix spelled out instead of comparing against nothing
        # (or KeyError-ing) — a gate that silently passes on a missing
        # reference is how regressions in new tiers would go unnoticed.
        mode_flag = "" if mode == "full" else f"--{mode} "
        committed = (record.get("current") or {}).get("modes", {}).get(mode)
        if not committed:
            print(
                f"bench --check: no committed 'current' snapshot for mode {mode!r} "
                f"in {BENCH_PATH} — record one first:\n"
                f"  python tools/bench.py {mode_flag}--update",
                file=sys.stderr,
            )
            return 2
        # Per-workload delta table: the gate's verdict should be readable
        # at a glance from CI logs, not reverse-engineered from an exit
        # code and a wall of numbers.
        failed = []
        missing = []
        mem_warned = []
        header = (
            f"  {'workload':<22s} {'fresh ev/s':>12s} {'committed':>12s} "
            f"{'delta':>8s} {'floor':>12s}  verdict"
        )
        print(header)
        print("  " + "-" * (len(header) - 2))
        for name, res in results.items():
            # Parallel '@wN' rows gate *advisorily*: multi-core speedup is
            # far more host-dependent (core count, fork cost, scheduler)
            # than single-thread events/sec, and the equivalence half of
            # the A/B already hard-asserted in run_suite.  A slow parallel
            # row prints a warning verdict but never fails the gate.
            advisory = "@w" in name
            ref = committed.get(name)
            if ref is None:
                if advisory:
                    print(
                        f"  {name:<22s} {res['events_per_sec']:>12,.0f} {'(missing)':>12s} "
                        f"{'':>8s} {'':>12s}  no snapshot (advisory)"
                    )
                    continue
                # A workload with no committed number cannot be gated —
                # that is a failure of the snapshot, not a free pass.
                print(
                    f"  {name:<22s} {res['events_per_sec']:>12,.0f} {'(missing)':>12s} "
                    f"{'':>8s} {'':>12s}  NO SNAPSHOT"
                )
                missing.append(name)
                continue
            floor = (1.0 - TOLERANCE) * ref["events_per_sec"]
            delta = res["events_per_sec"] / ref["events_per_sec"] - 1.0
            ok = res["events_per_sec"] >= floor
            verdict = "ok" if ok else ("SLOW (advisory)" if advisory else "REGRESSION")
            print(
                f"  {name:<22s} {res['events_per_sec']:>12,.0f} "
                f"{ref['events_per_sec']:>12,.0f} {delta:>+7.1%} {floor:>12,.0f}  "
                f"{verdict}"
            )
            if not ok and not advisory:
                failed.append(name)
            ref_mem = ref.get("mem_traced_peak_mb")
            fresh_mem = res.get("mem_traced_peak_mb")
            if ref_mem and fresh_mem and fresh_mem > ref_mem * (1.0 + MEM_TOLERANCE):
                mem_warned.append((name, fresh_mem, ref_mem))
        # Advisory memory delta table, mirroring the events/sec gate table
        # above: traced peak and bytes/proc, fresh vs committed with
        # signed deltas and a verdict column.  Purely advisory — allocator
        # and host variance should never block a PR — but readable and
        # greppable from CI logs, so working-set drift cannot rot
        # silently between --update refreshes.
        mem_rows = [
            (name, res, committed.get(name))
            for name, res in results.items()
            if committed.get(name) and committed[name].get("mem_traced_peak_mb")
        ]
        if mem_rows:
            mem_header = (
                f"  {'workload':<22s} {'fresh MB':>9s} {'cmtd MB':>9s} {'delta':>8s} "
                f"{'fresh B/p':>10s} {'cmtd B/p':>10s} {'delta':>8s}  verdict (advisory)"
            )
            print(mem_header)
            print("  " + "-" * (len(mem_header) - 2))
            for name, res, ref in mem_rows:
                d_peak = res["mem_traced_peak_mb"] / ref["mem_traced_peak_mb"] - 1.0
                ref_bpp = ref.get("mem_bytes_per_proc") or 0
                bpp = res.get("mem_bytes_per_proc") or 0
                d_bpp = (bpp / ref_bpp - 1.0) if ref_bpp else 0.0
                verdict = "MEM GREW" if d_peak > MEM_TOLERANCE else "ok"
                print(
                    f"  {name:<22s} {res['mem_traced_peak_mb']:>9.1f} "
                    f"{ref['mem_traced_peak_mb']:>9.1f} {d_peak:>+7.1%} "
                    f"{bpp:>10,d} {ref_bpp:>10,d} {d_bpp:>+7.1%}  {verdict}"
                )
        for name, fresh_mem, ref_mem in mem_warned:
            print(
                f"WARNING: {name}: traced peak memory {fresh_mem:.1f} MB is "
                f"{fresh_mem / ref_mem - 1.0:+.0%} vs committed {ref_mem:.1f} MB "
                f"(> {MEM_TOLERANCE:.0%} — advisory only, not gating; refresh with "
                f"--update if intentional)",
                file=sys.stderr,
            )
        if missing:
            print(
                f"bench --check: workload(s) missing from the committed {mode!r} "
                f"snapshot: {', '.join(missing)} — record them first:\n"
                f"  python tools/bench.py {mode_flag}--update",
                file=sys.stderr,
            )
        if failed:
            print(
                f"events/sec regression (> {TOLERANCE:.0%} below committed) in: "
                f"{', '.join(failed)}",
                file=sys.stderr,
            )
        if failed or missing:
            return 1
        print(f"bench check passed ({mode}: all workloads within {TOLERANCE:.0%} of committed)")
        return 0

    base = record.get("baseline", {}).get("modes", {}).get(mode, {})
    for name, res in results.items():
        if name in base:
            speed = res["events_per_sec"] / base[name]["events_per_sec"]
            print(f"  {name:<20s} {speed:5.2f}x vs baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
