#!/usr/bin/env bash
# CI gate: tier-1 tests + engine bench smoke.
#
# Usage:  tools/ci.sh            # full gate (tests + bench check)
#         tools/ci.sh --no-bench # tests only (e.g. docs-only changes)
#
# The bench smoke runs tools/bench.py --quick --check, which fails when any
# workload's events/sec drops more than 20% below the committed snapshot in
# BENCH_engine.json.  On an intentional engine change, refresh the snapshot
# with `python tools/bench.py --quick --update && python tools/bench.py
# --update` and commit the result — the perf trajectory is part of the
# repo's contract (see docs/performance.md).

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

if [[ "${1:-}" != "--no-bench" ]]; then
    echo "== engine bench smoke (quick, 20% regression gate) =="
    python tools/bench.py --quick --check --repeats 3
fi

echo "CI gate passed."
