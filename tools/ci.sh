#!/usr/bin/env bash
# CI gate: lint + tier-1 tests + engine bench smoke.
#
# Usage:  tools/ci.sh               # full gate (lint + tests + quick bench check)
#         tools/ci.sh --no-bench    # lint + tests only (e.g. docs-only changes)
#         tools/ci.sh --bench-only  # bench regression gate only (engine-perf work)
#         tools/ci.sh --paper       # additionally gate the 256-rank paper tier
#
# Stages:
#
#   lint   ruff check (bug-class rules, see pyproject.toml) + ruff format
#          --check.  Skipped with a notice when ruff is not installed —
#          the GitHub workflow always installs it, so the skip only
#          applies to bare local environments.
#   tests  the tier-1 pytest suite (ROADMAP.md contract), then a quick
#          seeded fault-campaign smoke (sdr-mpi campaign --seeds 3): every
#          run is audited for the zero-leak arena balance, and any
#          invariant violation fails the gate (docs/fault_model.md).
#   bench  tools/bench.py --quick --check: fails with a per-workload delta
#          table when any workload's events/sec drops more than 20% below
#          the committed snapshot in BENCH_engine.json.  --paper adds the
#          256-logical-rank SDR collectives smoke at the same tolerance.
#
# On an intentional engine change, refresh the snapshots with
#   for t in "" --quick --paper --scale --scale4k --scale8k; do
#     python tools/bench.py $t --update
#   done
# and commit the result — the perf trajectory is part of the repo's
# contract (see docs/performance.md).

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

RUN_TESTS=1
RUN_BENCH=1
RUN_PAPER=0
for arg in "$@"; do
    case "$arg" in
        --no-bench)   RUN_BENCH=0 ;;
        --bench-only) RUN_TESTS=0 ;;
        --paper)      RUN_PAPER=1 ;;
        *) echo "tools/ci.sh: unknown flag: $arg" >&2; exit 2 ;;
    esac
done
if (( !RUN_TESTS && !RUN_BENCH )); then
    echo "tools/ci.sh: --no-bench and --bench-only leave nothing to run" >&2
    exit 2
fi
if (( RUN_PAPER && !RUN_BENCH )); then
    echo "tools/ci.sh: --paper requires the bench stage (conflicts with --no-bench)" >&2
    exit 2
fi

T0=$SECONDS

if (( RUN_TESTS )); then
    echo "== lint (ruff check + ruff format --check) =="
    if command -v ruff >/dev/null 2>&1; then
        ruff check .
        # Blocking since PR 3: the tree is kept `ruff format`-clean, so
        # any drift is a one-command fix (`ruff format .` + commit).
        if ! ruff format --check .; then
            echo "   ruff format --check found drift — run 'ruff format .' and commit" >&2
            exit 1
        fi
    else
        echo "   ruff not installed — lint gate SKIPPED (the CI workflow installs it;"
        echo "   'pip install ruff' to run it locally)"
    fi

    echo "== tier-1 tests =="
    python -m pytest -x -q

    echo "== fault-campaign smoke (3 seeded mixes x 5 protocols, audited) =="
    # Exits nonzero on any invariant violation (arena imbalance or a
    # per-site strand sum that fails to reproduce the scalar counters);
    # the degradation table lands in the log.  See docs/fault_model.md.
    python -m repro campaign --seeds 3
fi

if (( RUN_BENCH )); then
    echo "== engine bench smoke (quick, 20% events/sec regression gate) =="
    python tools/bench.py --quick --check --repeats 3
    if (( RUN_PAPER )); then
        echo "== engine bench smoke (paper scale: 256 logical ranks) =="
        python tools/bench.py --paper --check --repeats 2
    fi
fi

echo "CI gate passed in $(( SECONDS - T0 ))s."
