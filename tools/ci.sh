#!/usr/bin/env bash
# CI gate: lint + tier-1 tests + engine bench smoke (+ optional sweep smoke).
#
# Usage:  tools/ci.sh                # full gate (lint + tests + quick bench check)
#         tools/ci.sh --no-bench     # lint + tests only (e.g. docs-only changes)
#         tools/ci.sh --bench-only   # bench regression gate only (engine-perf work)
#         tools/ci.sh --paper        # additionally gate the 256-rank paper tier
#         tools/ci.sh --sweep-smoke  # additionally round-trip a tiny sweep matrix
#
# Stages (each is wall-timed; a summary table prints at exit, pass or fail):
#
#   lint          ruff check (bug-class rules, see pyproject.toml) + ruff
#                 format --check.  Skipped with a notice when ruff is not
#                 installed — the GitHub workflow always installs it, so
#                 the skip only applies to bare local environments.
#   tests         the tier-1 pytest suite (ROADMAP.md contract)
#   campaign      a quick seeded fault-campaign smoke (sdr-mpi campaign
#                 --seeds 3): every run is audited for the zero-leak arena
#                 balance, and any invariant violation fails the gate
#                 (docs/fault_model.md)
#   sweep-smoke   (--sweep-smoke) a tiny 2-axis sweep matrix on a 2-worker
#                 pool, round-tripping generate -> execute -> store ->
#                 query -> table, with 2 configs re-verified against
#                 serial execution (docs/sweeps.md).  Artifacts land in
#                 .ci-sweep/ for the workflow to publish.
#   bench         tools/bench.py --quick --check: fails with a per-workload
#                 delta table when any workload's events/sec drops more
#                 than 20% below the committed snapshot in BENCH_engine.json.
#                 --paper adds the 256-logical-rank SDR collectives smoke
#                 at the same tolerance.
#
# On an intentional engine change, refresh the snapshots with
#   for t in "" --quick --paper --scale --scale4k --scale8k; do
#     python tools/bench.py $t --update
#   done
# and commit the result — the perf trajectory is part of the repo's
# contract (see docs/performance.md).

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

RUN_TESTS=1
RUN_BENCH=1
RUN_PAPER=0
RUN_SWEEP=0
for arg in "$@"; do
    case "$arg" in
        --no-bench)    RUN_BENCH=0 ;;
        --bench-only)  RUN_TESTS=0 ;;
        --paper)       RUN_PAPER=1 ;;
        --sweep-smoke) RUN_SWEEP=1 ;;
        *) echo "tools/ci.sh: unknown flag: $arg" >&2; exit 2 ;;
    esac
done
if (( !RUN_TESTS && !RUN_BENCH && !RUN_SWEEP )); then
    echo "tools/ci.sh: --no-bench and --bench-only leave nothing to run" >&2
    exit 2
fi
if (( RUN_PAPER && !RUN_BENCH )); then
    echo "tools/ci.sh: --paper requires the bench stage (conflicts with --no-bench)" >&2
    exit 2
fi

T0=$SECONDS

# ---- per-stage wall-time accounting -----------------------------------
STAGE_NAMES=()
STAGE_SECS=()
CURRENT_STAGE=""
STAGE_T0=0

begin_stage() {
    CURRENT_STAGE="$1"
    STAGE_T0=$SECONDS
    echo "== $2 =="
}

end_stage() {
    STAGE_NAMES+=("$CURRENT_STAGE")
    STAGE_SECS+=("$(( SECONDS - STAGE_T0 ))")
    CURRENT_STAGE=""
}

print_stage_summary() {
    # Runs on every exit — an aborted stage still shows up, marked failed.
    if [[ -n "$CURRENT_STAGE" ]]; then
        STAGE_NAMES+=("$CURRENT_STAGE (failed)")
        STAGE_SECS+=("$(( SECONDS - STAGE_T0 ))")
    fi
    if (( ${#STAGE_NAMES[@]} )); then
        echo
        echo "stage wall-time summary:"
        printf '  %-24s %7s\n' "stage" "seconds"
        printf '  %-24s %7s\n' "------------------------" "-------"
        local i
        for i in "${!STAGE_NAMES[@]}"; do
            printf '  %-24s %7s\n' "${STAGE_NAMES[$i]}" "${STAGE_SECS[$i]}"
        done
        printf '  %-24s %7s\n' "total" "$(( SECONDS - T0 ))"
    fi
}
trap print_stage_summary EXIT

# ---- stages ------------------------------------------------------------
if (( RUN_TESTS )); then
    begin_stage lint "lint (ruff check + ruff format --check)"
    if command -v ruff >/dev/null 2>&1; then
        ruff check .
        # Blocking since PR 3: the tree is kept `ruff format`-clean, so
        # any drift is a one-command fix (`ruff format .` + commit).
        if ! ruff format --check .; then
            echo "   ruff format --check found drift — run 'ruff format .' and commit" >&2
            exit 1
        fi
    else
        echo "   ruff not installed — lint gate SKIPPED (the CI workflow installs it;"
        echo "   'pip install ruff' to run it locally)"
    fi
    end_stage

    begin_stage tests "tier-1 tests"
    python -m pytest -x -q
    end_stage

    begin_stage campaign "fault-campaign smoke (3 seeded mixes x 5 protocols, audited)"
    # Exits nonzero on any invariant violation (arena imbalance or a
    # per-site strand sum that fails to reproduce the scalar counters);
    # the degradation table lands in the log.  See docs/fault_model.md.
    python -m repro campaign --seeds 3
    end_stage
fi

if (( RUN_SWEEP )); then
    begin_stage sweep-smoke "sweep smoke (2-axis matrix, 2 workers, store round-trip)"
    mkdir -p .ci-sweep
    rm -f .ci-sweep/smoke.jsonl .ci-sweep/smoke.sqlite
    # Generate -> execute (pooled) -> store -> verify a sample serially.
    # Nonzero on any invariant violation, worker crash, or fingerprint
    # mismatch between the pooled run and serial re-execution.
    # The workload axis includes an open-loop traffic config so the
    # request-accounting audit and the traffic report table gate per-PR.
    python -m repro sweep \
        --protocols native sdr --ranks 4 --workloads ring traffic-poisson \
        --mixes clean full --seeds 2 \
        --workers 2 --verify 2 --store .ci-sweep/smoke --overwrite \
        | tee .ci-sweep/smoke-table.txt
    # Query path: re-render the tables purely from the finalized store.
    python -m repro sweep --report --store .ci-sweep/smoke > /dev/null
    end_stage
fi

if (( RUN_BENCH )); then
    begin_stage bench-quick "engine bench smoke (quick, 20% events/sec regression gate)"
    python tools/bench.py --quick --check --repeats 3
    end_stage
    if (( RUN_PAPER )); then
        begin_stage bench-paper "engine bench smoke (paper scale: 256 logical ranks)"
        python tools/bench.py --paper --check --repeats 2
        end_stage
    fi
fi

echo "CI gate passed in $(( SECONDS - T0 ))s."
